"""Campaign execution: fan independent capture points out to workers.

A campaign is a list of :class:`CapturePoint` — fully described,
mutually independent simulations (job kind, input size, derived seed,
cluster + Hadoop configuration, job kwargs).  The
:class:`CampaignRunner` resolves each point through a three-level
hierarchy:

1. the process-local memo (:mod:`repro.experiments.campaigns`),
2. the persistent content-addressed store
   (:class:`repro.experiments.store.CaptureStore`), and
3. actual simulation — serial in-process, or fanned out across
   ``workers`` processes with a ``spawn`` context.

Determinism is the contract that makes the fan-out safe: every point
carries its own derived seed and builds a fresh
:class:`~repro.mapreduce.cluster.HadoopCluster`, so a point's
(result, trace) depends only on the point — never on which worker ran
it or in what order.  Parallel campaign output is flow-for-flow
identical to serial output, and both are byte-identical once written
as JSONL.

Seed derivation
---------------
Historically the repo had two formulas — ``seed + size_index`` in the
campaign memo and ``seed * 10_007 + size_index * 101 + repeat`` in the
top-level API — so the same logical sweep point hashed to different
captures depending on the entry path.  :func:`derive_seed` is now the
single documented rule, used by both.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.result import JobResult
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.experiments.store import (
    TRACE_FORMAT_VERSION,
    CaptureStore,
    key_hash,
)


def derive_seed(base_seed: int, size_index: int, repeat: int = 0) -> int:
    """The campaign seed-derivation rule (one formula for all layers).

    ``base_seed * 10_007 + size_index * 101 + repeat`` — multiplying the
    base by a prime much larger than any sweep keeps campaigns with
    nearby base seeds from colliding, and the ``* 101`` stride keeps
    (size_index, repeat) pairs injective for any realistic sweep
    (repeats < 101).  The function is pure, so serial and parallel
    execution derive identical seeds for identical points.
    """
    return base_seed * 10_007 + size_index * 101 + repeat


@dataclass(frozen=True)
class CapturePoint:
    """One fully-specified capture: everything a worker needs to run it.

    ``key_config`` is the canonical configuration sub-dict used for
    content addressing; constructors set it so that logically equal
    points (same campaign, or same explicit spec+config) share one
    hash regardless of which API layer built them.
    """

    job: str
    input_gb: float
    seed: int
    cluster_spec: ClusterSpec
    hadoop_config: HadoopConfig
    job_kwargs: Tuple[Tuple[str, Any], ...] = ()
    key_config: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_campaign(cls, job: str, input_gb: float, seed: int,
                      campaign: "Any", job_kwargs: Optional[Mapping[str, Any]]
                      = None) -> "CapturePoint":
        """Point for a :class:`~repro.experiments.campaigns.CampaignConfig`."""
        return cls(job=job, input_gb=float(input_gb), seed=int(seed),
                   cluster_spec=campaign.cluster_spec(),
                   hadoop_config=campaign.hadoop_config(),
                   job_kwargs=_freeze(job_kwargs),
                   key_config=_freeze({"campaign": campaign.to_dict()}))

    @classmethod
    def from_configs(cls, job: str, input_gb: float, seed: int,
                     cluster_spec: ClusterSpec, hadoop_config: HadoopConfig,
                     job_kwargs: Optional[Mapping[str, Any]] = None,
                     ) -> "CapturePoint":
        """Point for explicit (ClusterSpec, HadoopConfig) pairs (api layer)."""
        return cls(job=job, input_gb=float(input_gb), seed=int(seed),
                   cluster_spec=cluster_spec, hadoop_config=hadoop_config,
                   job_kwargs=_freeze(job_kwargs),
                   key_config=_freeze({"cluster": cluster_spec.to_dict(),
                                       "hadoop": hadoop_config.to_dict()}))

    def key_dict(self) -> Dict[str, Any]:
        """Canonical key: hash input for the store AND the memo key."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "job": self.job,
            "input_gb": self.input_gb,
            "seed": self.seed,
            "config": _thaw(self.key_config),
            "job_kwargs": _thaw(self.job_kwargs),
        }

    def key(self) -> str:
        return key_hash(self.key_dict())

    def simulate(self, telemetry: Optional[Telemetry] = None,
                 ) -> Tuple[JobResult, JobTrace]:
        """Run this point on a fresh cluster (pure function of the point).

        The job id is derived from the point's content hash rather than
        the process-global job counter, so the (result, trace) bytes
        are identical no matter which process/worker runs the point or
        how many jobs ran before it — telemetry included: spans and
        probes only read engine state, so passing an enabled
        ``telemetry`` never changes the returned bytes.
        """
        kwargs = dict(self.job_kwargs)
        kwargs.setdefault("job_id", f"job_{self.job}_{self.key()[:10]}")
        cluster = HadoopCluster(self.cluster_spec, self.hadoop_config,
                                seed=self.seed, telemetry=telemetry)
        spec = make_job(self.job, input_gb=self.input_gb, **kwargs)
        results, traces = cluster.run([spec])
        return results[0], traces[0]


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted item-tuple of a kwargs dict (hashable, deterministic)."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


def _thaw(items: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return dict(items)


def _simulate_point(point: CapturePoint) -> Tuple[JobResult, JobTrace]:
    """Module-level worker entry point (picklable under spawn)."""
    return point.simulate()


def _simulate_point_observed(
        point: CapturePoint, config: Optional[TelemetryConfig],
) -> Tuple[Tuple[JobResult, JobTrace], Dict[str, Any]]:
    """Worker entry point that also returns a telemetry snapshot.

    The worker builds its own telemetry from the picklable ``config``
    (span sinks stay per-process — workers default to the null sink)
    and ships its registry snapshot back for the parent to absorb.
    """
    telemetry = config.build() if config is not None else Telemetry.disabled()
    value = point.simulate(telemetry=telemetry)
    return value, telemetry.snapshot()


#: The per-level counters a runner keeps, in presentation order.
_RUNNER_STAT_FIELDS = ("points", "memo_hits", "store_hits", "simulated",
                       "parallel_simulated")


@dataclass
class RunnerStats:
    """Read-only snapshot of what a campaign run did, level by level.

    Live counters moved onto the runner telemetry's registry
    (``campaign.*``); this dataclass survives as the compatibility view
    handed out by :attr:`CampaignRunner.stats`.
    """

    points: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    parallel_simulated: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"points": self.points, "memo_hits": self.memo_hits,
                "store_hits": self.store_hits, "simulated": self.simulated,
                "parallel_simulated": self.parallel_simulated}


class CampaignRunner:
    """Resolve capture points through memo → store → (parallel) simulation.

    ``workers <= 1`` simulates in-process; ``workers > 1`` uses a
    ``spawn``-context :class:`ProcessPoolExecutor` so workers import the
    package fresh (fork-safety of the simulator's global state is never
    relied on).  ``memo_get``/``memo_put`` plug in the process-local
    memo without creating an import cycle with ``campaigns``.
    """

    def __init__(self, store: Optional[CaptureStore] = None, workers: int = 1,
                 memo_get=None, memo_put=None,
                 telemetry: Optional[Telemetry] = None):
        self.store = store
        self.workers = max(1, int(workers))
        self._memo_get = memo_get or (lambda key: None)
        self._memo_put = memo_put or (lambda key, value: None)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        registry = self.telemetry.registry
        self._counters = {name: registry.counter(f"campaign.{name}")
                          for name in _RUNNER_STAT_FIELDS}

    @property
    def stats(self) -> RunnerStats:
        """Compatibility view of the registry-backed counters."""
        return RunnerStats(**{name: int(counter.value)
                              for name, counter in self._counters.items()})

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name].value += amount

    # -- single point -------------------------------------------------------------

    def run_point(self, point: CapturePoint) -> Tuple[JobResult, JobTrace]:
        return self.run([point])[0]

    # -- campaign -----------------------------------------------------------------

    def run(self, points: Sequence[CapturePoint],
            ) -> List[Tuple[JobResult, JobTrace]]:
        """Resolve every point, preserving input order.

        Duplicate points (same key) are simulated at most once per
        call; later occurrences reuse the first resolution.
        """
        results: List[Optional[Tuple[JobResult, JobTrace]]] = [None] * len(points)
        pending: Dict[str, List[int]] = {}
        pending_points: Dict[str, CapturePoint] = {}
        self._count("points", len(points))

        for index, point in enumerate(points):
            key = point.key()
            if key in pending:
                pending[key].append(index)
                continue
            hit = self._memo_get(key)
            if hit is not None:
                self._count("memo_hits")
                results[index] = hit
                continue
            if self.store is not None:
                stored = self.store.get(point.key_dict())
                if stored is not None:
                    self._count("store_hits")
                    self._memo_put(key, stored)
                    results[index] = stored
                    continue
            pending[key] = [index]
            pending_points[key] = point

        if pending:
            simulated = self._simulate_all(list(pending_points.items()))
            for key, value in simulated.items():
                point = pending_points[key]
                if self.store is not None:
                    self.store.put(point.key_dict(), *value)
                self._memo_put(key, value)
                for index in pending[key]:
                    results[index] = value
        return results  # type: ignore[return-value]

    # -- simulation back-ends -----------------------------------------------------

    def _simulate_all(self, items: List[Tuple[str, CapturePoint]],
                      ) -> Dict[str, Tuple[JobResult, JobTrace]]:
        if self.workers == 1 or len(items) == 1:
            # In-process: points run directly against the runner's
            # telemetry, so counters/spans/probes accumulate in place.
            self._count("simulated", len(items))
            return {key: point.simulate(telemetry=self.telemetry)
                    for key, point in items}
        self._count("simulated", len(items))
        self._count("parallel_simulated", len(items))
        out: Dict[str, Tuple[JobResult, JobTrace]] = {}
        max_workers = min(self.workers, len(items))
        # Workers re-create telemetry from the picklable config (null
        # span sink — span streams stay per-process) and return their
        # registry snapshots, which the parent merges in.
        worker_config = self.telemetry.config()
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=get_context("spawn")) as pool:
            futures = {pool.submit(_simulate_point_observed, point,
                                   worker_config): key
                       for key, point in items}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    value, snapshot = future.result()
                    self.telemetry.absorb(snapshot)
                    out[futures[future]] = value
        return out


def default_workers() -> int:
    """Worker count for ``--workers 0`` / auto: one per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)
