"""Pcap-like packet traces and packet→flow assembly.

The real Keddah toolchain starts from tcpdump output.  We keep that
code path honest with a minimal packet-trace layer:

* :class:`PacketRecord` — one packet (time, endpoints, ports, bytes),
* :func:`write_packets` / :func:`read_packets` — a CSV codec standing
  in for the pcap file format,
* :func:`synthesize_packets` — explode a flow record into an MTU-sized
  packet train spread over the flow's lifetime (used to round-trip the
  pipeline in tests and examples),
* :func:`assemble_flows` — the actual capture reduction: group packets
  by 5-tuple, split on idle gaps, emit classified
  :class:`~repro.capture.records.FlowRecord` objects.

A flow round-tripped through ``synthesize_packets`` → ``assemble_flows``
preserves its endpoints, byte count and (to packet quantisation) its
timing, which the tests assert.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.capture.classifier import classify_ports
from repro.capture.records import FlowRecord

DEFAULT_MTU = 1448  # TCP payload of a 1500-byte Ethernet MTU
DEFAULT_IDLE_GAP = 60.0

_CSV_FIELDS = ("time", "src", "dst", "src_port", "dst_port", "size")


@dataclass(frozen=True)
class PacketRecord:
    """One observed packet (payload bytes only, as Keddah counts them)."""

    time: float
    src: str
    dst: str
    src_port: int
    dst_port: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be >= 0, got {self.size}")


def synthesize_packets(flow: FlowRecord, mtu: int = DEFAULT_MTU) -> List[PacketRecord]:
    """Explode a flow into a uniform packet train over [start, end].

    Zero-byte flows yield a single empty packet (the connection's
    handshake footprint) so the flow remains visible in the capture.
    """
    if mtu <= 0:
        raise ValueError(f"mtu must be positive, got {mtu}")
    size = int(flow.size)
    if size == 0:
        return [PacketRecord(flow.start, flow.src, flow.dst,
                             flow.src_port, flow.dst_port, 0)]
    count = math.ceil(size / mtu)
    packets = []
    span = flow.duration
    for index in range(count):
        payload = mtu if index < count - 1 else size - mtu * (count - 1)
        offset = span * index / count if count > 1 else 0.0
        packets.append(PacketRecord(
            time=flow.start + offset,
            src=flow.src, dst=flow.dst,
            src_port=flow.src_port, dst_port=flow.dst_port,
            size=payload))
    return packets


def write_packets(packets: Iterable[PacketRecord], path: str | Path) -> None:
    """Write packets as CSV (our stand-in for the pcap format)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for packet in packets:
            writer.writerow([f"{packet.time:.9f}", packet.src, packet.dst,
                             packet.src_port, packet.dst_port, packet.size])


def read_packets(path: str | Path) -> List[PacketRecord]:
    """Read a packet CSV written by :func:`write_packets`."""
    path = Path(path)
    packets = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(_CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"{path}: missing packet columns {sorted(missing)}")
        for row in reader:
            packets.append(PacketRecord(
                time=float(row["time"]), src=row["src"], dst=row["dst"],
                src_port=int(row["src_port"]), dst_port=int(row["dst_port"]),
                size=int(row["size"])))
    return packets


def assemble_flows(packets: Iterable[PacketRecord],
                   rack_of: Optional[Mapping[str, int]] = None,
                   idle_gap: float = DEFAULT_IDLE_GAP) -> List[FlowRecord]:
    """Reduce packets to classified flow records.

    Packets sharing a (src, dst, src_port, dst_port) 5-tuple (protocol
    implied) belong to one flow unless separated by more than
    ``idle_gap`` seconds of silence, in which case a new flow starts —
    the same heuristic tcpdump post-processors use for long captures.

    ``rack_of`` maps host names to rack ids for the cross-rack fields;
    hosts not present map to rack ``-1`` (unknown).
    """
    if idle_gap <= 0:
        raise ValueError(f"idle_gap must be positive, got {idle_gap}")
    rack_of = rack_of or {}
    ordered = sorted(packets, key=lambda packet: packet.time)
    open_flows: Dict[Tuple[str, str, int, int], _OpenFlow] = {}
    finished: List[_OpenFlow] = []
    for packet in ordered:
        key = (packet.src, packet.dst, packet.src_port, packet.dst_port)
        current = open_flows.get(key)
        if current is not None and packet.time - current.last_time > idle_gap:
            finished.append(current)
            current = None
        if current is None:
            current = _OpenFlow(packet)
            open_flows[key] = current
        else:
            current.add(packet)
    finished.extend(open_flows.values())
    finished.sort(key=lambda flow: (flow.first_time, flow.key))
    return [flow.to_record(rack_of) for flow in finished]


class _OpenFlow:
    """Accumulator for one in-progress flow during assembly."""

    __slots__ = ("key", "first_time", "last_time", "bytes", "packets")

    def __init__(self, packet: PacketRecord):
        self.key = (packet.src, packet.dst, packet.src_port, packet.dst_port)
        self.first_time = packet.time
        self.last_time = packet.time
        self.bytes = packet.size
        self.packets = 1

    def add(self, packet: PacketRecord) -> None:
        self.last_time = max(self.last_time, packet.time)
        self.bytes += packet.size
        self.packets += 1

    def to_record(self, rack_of: Mapping[str, int]) -> FlowRecord:
        src, dst, src_port, dst_port = self.key
        component = classify_ports(src_port, dst_port)
        return FlowRecord(
            src=src, dst=dst,
            src_rack=rack_of.get(src, -1), dst_rack=rack_of.get(dst, -1),
            src_port=src_port, dst_port=dst_port,
            size=float(self.bytes),
            start=self.first_time, end=self.last_time,
            component=component.value,
            service="assembled")
