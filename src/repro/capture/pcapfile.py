"""Binary libpcap file I/O: real interop with tcpdump/Wireshark.

The CSV packet codec (:mod:`repro.capture.pcap`) is convenient inside
the toolchain, but the lingua franca of packet captures is the libpcap
file format.  This module writes synthetic packet trains as genuine
``.pcap`` files (Ethernet + IPv4 + TCP framing, microsecond timestamps)
and reads them back — so simulated traffic can be opened in Wireshark,
and tcpdump output (pre-reduced to TCP) can be ingested directly.

Format notes:

* global header: magic ``0xa1b2c3d4`` (big-endian byte order in file
  chosen as little-endian native here), version 2.4, LINKTYPE_EN10MB;
* each record: ts_sec, ts_usec, incl_len, orig_len + frame bytes;
* host names are mapped to deterministic ``10.(h>>8).(h&255).1``
  addresses on write and back to names via a side map on read (an
  unknown address reads back as its dotted quad).

Payload bytes beyond the TCP header are zero-filled; only ``snaplen``
bytes per packet are stored (headers + nothing), with ``orig_len``
carrying the true frame size — exactly how ``tcpdump -s 64`` captures
look, and all Keddah needs.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.capture.pcap import PacketRecord
from repro.simkit.rng import stable_hash

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
SNAPLEN = 64  # headers only, like `tcpdump -s 64`

_ETH_LEN = 14
_IP_LEN = 20
_TCP_LEN = 20
_HEADERS_LEN = _ETH_LEN + _IP_LEN + _TCP_LEN


def host_to_ip(name: str) -> str:
    """Deterministic 10.x.y.1 address for a host name."""
    digest = stable_hash(name)
    return f"10.{(digest >> 8) & 255}.{digest & 255}.1"


def _ip_bytes(ip: str) -> bytes:
    return bytes(int(part) for part in ip.split("."))


def _mac_bytes(ip: str) -> bytes:
    return b"\x02\x00" + _ip_bytes(ip)


def _frame(packet: PacketRecord, src_ip: str, dst_ip: str) -> bytes:
    """Ethernet+IPv4+TCP headers for one packet (no payload stored)."""
    ethernet = _mac_bytes(dst_ip) + _mac_bytes(src_ip) + struct.pack(">H", 0x0800)
    total_len = _IP_LEN + _TCP_LEN + packet.size
    ip_header = struct.pack(
        ">BBHHHBBH4s4s",
        0x45, 0, min(total_len, 0xFFFF), 0, 0, 64, 6, 0,
        _ip_bytes(src_ip), _ip_bytes(dst_ip))
    tcp_header = struct.pack(
        ">HHIIBBHHH",
        packet.src_port & 0xFFFF, packet.dst_port & 0xFFFF,
        0, 0, (5 << 4), 0x18, 0xFFFF, 0, 0)  # PSH|ACK
    return ethernet + ip_header + tcp_header


def write_pcap(packets: Iterable[PacketRecord], path: str | Path) -> int:
    """Write packets as a libpcap file.  Returns the packet count."""
    path = Path(path)
    count = 0
    with path.open("wb") as handle:
        handle.write(struct.pack(
            "<IHHiIII", PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0, 0, SNAPLEN, LINKTYPE_ETHERNET))
        for packet in sorted(packets, key=lambda p: p.time):
            src_ip = host_to_ip(packet.src)
            dst_ip = host_to_ip(packet.dst)
            frame = _frame(packet, src_ip, dst_ip)
            orig_len = _HEADERS_LEN + packet.size
            incl = frame[:SNAPLEN]
            seconds = int(packet.time)
            micros = int(round((packet.time - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(struct.pack("<IIII", seconds, micros,
                                     len(incl), orig_len))
            handle.write(incl)
            count += 1
    return count


def read_pcap(path: str | Path,
              name_of: Optional[Dict[str, str]] = None) -> List[PacketRecord]:
    """Read a libpcap file written by :func:`write_pcap` (or tcpdump).

    Only Ethernet/IPv4/TCP records are returned; other frames are
    skipped.  Payload size is recovered from ``orig_len`` minus the
    header overhead.  ``name_of`` maps dotted-quad addresses back to
    host names (see :func:`ip_name_map`).
    """
    path = Path(path)
    name_of = name_of or {}
    data = path.read_bytes()
    if len(data) < 24:
        raise ValueError(f"{path}: not a pcap file (too short)")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC))[0]:
        endian = ">"
    else:
        raise ValueError(f"{path}: bad pcap magic {magic:#x}")
    linktype = struct.unpack(endian + "I", data[20:24])[0]
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"{path}: unsupported linktype {linktype}")

    packets: List[PacketRecord] = []
    offset = 24
    while offset + 16 <= len(data):
        seconds, micros, incl_len, orig_len = struct.unpack(
            endian + "IIII", data[offset:offset + 16])
        offset += 16
        frame = data[offset:offset + incl_len]
        offset += incl_len
        if len(frame) < _HEADERS_LEN:
            continue
        ethertype = struct.unpack(">H", frame[12:14])[0]
        if ethertype != 0x0800:
            continue
        protocol = frame[_ETH_LEN + 9]
        if protocol != 6:  # TCP only
            continue
        src_ip = ".".join(str(b) for b in frame[_ETH_LEN + 12:_ETH_LEN + 16])
        dst_ip = ".".join(str(b) for b in frame[_ETH_LEN + 16:_ETH_LEN + 20])
        src_port, dst_port = struct.unpack(
            ">HH", frame[_ETH_LEN + _IP_LEN:_ETH_LEN + _IP_LEN + 4])
        payload = max(orig_len - _HEADERS_LEN, 0)
        packets.append(PacketRecord(
            time=seconds + micros / 1e6,
            src=name_of.get(src_ip, src_ip),
            dst=name_of.get(dst_ip, dst_ip),
            src_port=src_port, dst_port=dst_port, size=payload))
    return packets


def ip_name_map(host_names: Iterable[str]) -> Dict[str, str]:
    """The IP→name map needed to read back a write of these hosts."""
    return {host_to_ip(name): name for name in host_names}
