"""Sampled-capture modelling (sFlow-style 1-in-N packet sampling).

Full-fidelity tcpdump on every NIC is expensive; production captures
are often *sampled*.  Sampling distorts flow statistics in known ways —
volumes can be rescaled, but small flows disappear entirely and flow
boundaries blur.  This module applies sampling to packet traces and
rescales the assembled flows, so the toolchain can quantify what a
sampled capture would have cost in model fidelity.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.capture.pcap import DEFAULT_IDLE_GAP, PacketRecord, assemble_flows
from repro.capture.records import FlowRecord


def sample_packets(packets: Iterable[PacketRecord], rate: int,
                   rng: Optional[np.random.Generator] = None,
                   seed: int = 0) -> List[PacketRecord]:
    """Keep each packet independently with probability ``1/rate``."""
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    if rate == 1:
        return list(packets)
    rng = rng if rng is not None else np.random.default_rng(seed)
    kept = []
    for packet in packets:
        if rng.random() < 1.0 / rate:
            kept.append(packet)
    return kept


def scale_sampled_flows(flows: Iterable[FlowRecord], rate: int) -> List[FlowRecord]:
    """Rescale assembled-from-sampled flows by the sampling rate.

    Byte counts are multiplied by ``rate`` (the unbiased volume
    estimator); timings are left as observed — sampling cannot recover
    a flow's true first/last packet.
    """
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    scaled = []
    for flow in flows:
        data = flow.to_dict()
        data["size"] = flow.size * rate
        scaled.append(FlowRecord.from_dict(data))
    return scaled


def assemble_sampled(packets: Iterable[PacketRecord], rate: int,
                     rack_of=None, idle_gap: float = DEFAULT_IDLE_GAP,
                     seed: int = 0) -> List[FlowRecord]:
    """Sample, assemble and rescale in one step."""
    sampled = sample_packets(packets, rate, seed=seed)
    flows = assemble_flows(sampled, rack_of=rack_of, idle_gap=idle_gap)
    return scale_sampled_flows(flows, rate)


def sampling_loss(original_flows: Iterable[FlowRecord],
                  sampled_flows: Iterable[FlowRecord]) -> dict:
    """Quantify what sampling lost: flows, volume, small-flow survival."""
    original = list(original_flows)
    sampled = list(sampled_flows)
    original_volume = sum(f.size for f in original)
    sampled_volume = sum(f.size for f in sampled)
    return {
        "original_flows": len(original),
        "sampled_flows": len(sampled),
        "flow_survival": len(sampled) / len(original) if original else 1.0,
        "original_volume": original_volume,
        "estimated_volume": sampled_volume,
        "volume_error": (abs(sampled_volume - original_volume) / original_volume
                         if original_volume else 0.0),
    }
