"""Flow records and job traces — the capture stage's data model.

A :class:`FlowRecord` is the unit Keddah models: one transport
connection with endpoints, ports, byte count and timing, labelled with
the Hadoop traffic component it belongs to.  A :class:`JobTrace` is the
set of flows one MapReduce job generated plus the exact configuration
it ran under (:class:`CaptureMeta`), which the modelling stage uses as
covariates (input size, reducer count, replication, ...).

Both serialise to JSON/JSONL with a stable schema so captures from a
real cluster could be imported unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional


class TrafficComponent(str, Enum):
    """Keddah's decomposition of Hadoop traffic."""

    HDFS_READ = "hdfs_read"       # DataNode -> map task (input splits)
    HDFS_WRITE = "hdfs_write"     # replication pipeline hops (job output)
    SHUFFLE = "shuffle"           # map host -> reduce task partition fetches
    CONTROL = "control"           # heartbeats, RPC, job submission
    OTHER = "other"               # anything unclassified

    def __str__(self) -> str:
        return self.value

    @classmethod
    def data_components(cls) -> List["TrafficComponent"]:
        """The three data-plane components the paper models."""
        return [cls.HDFS_READ, cls.SHUFFLE, cls.HDFS_WRITE]


@dataclass
class FlowRecord:
    """One captured flow (transport connection)."""

    src: str
    dst: str
    src_rack: int
    dst_rack: int
    src_port: int
    dst_port: int
    size: float
    start: float
    end: float
    component: str = TrafficComponent.OTHER.value
    service: str = ""
    job_id: str = ""
    flow_id: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"flow size must be >= 0, got {self.size}")
        if self.end < self.start:
            raise ValueError(f"flow ends before it starts: [{self.start}, {self.end}]")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def mean_rate(self) -> float:
        """Average throughput, bytes/s (0 for empty flows)."""
        if self.duration <= 0:
            return 0.0
        return self.size / self.duration

    @property
    def cross_rack(self) -> bool:
        return self.src_rack != self.dst_rack

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowRecord":
        return cls(**data)


@dataclass
class CaptureMeta:
    """Everything the modelling stage needs to know about one capture."""

    job_id: str
    job_kind: str
    input_bytes: float
    cluster: Dict[str, Any] = field(default_factory=dict)
    hadoop: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    submit_time: float = 0.0
    finish_time: float = 0.0
    num_maps: int = 0
    num_reduces: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaptureMeta":
        return cls(**data)


@dataclass
class JobTrace:
    """All flows of one job run, with its capture metadata."""

    meta: CaptureMeta
    flows: List[FlowRecord] = field(default_factory=list)

    # -- queries ---------------------------------------------------------------

    def component(self, component: TrafficComponent | str) -> List[FlowRecord]:
        """Flows of one traffic component, by capture order."""
        value = str(component)
        return [flow for flow in self.flows if flow.component == value]

    def components_present(self) -> List[str]:
        return sorted({flow.component for flow in self.flows})

    def total_bytes(self, component: Optional[TrafficComponent | str] = None) -> float:
        flows = self.flows if component is None else self.component(component)
        return sum(flow.size for flow in flows)

    def flow_sizes(self, component: TrafficComponent | str) -> List[float]:
        return [flow.size for flow in self.component(component)]

    def flow_starts(self, component: TrafficComponent | str) -> List[float]:
        """Flow start times relative to job submission, sorted."""
        origin = self.meta.submit_time
        return sorted(flow.start - origin for flow in self.component(component))

    def interarrivals(self, component: TrafficComponent | str) -> List[float]:
        """Sorted-start inter-arrival gaps within a component."""
        starts = self.flow_starts(component)
        return [b - a for a, b in zip(starts[:-1], starts[1:])]

    def flow_count(self, component: Optional[TrafficComponent | str] = None) -> int:
        if component is None:
            return len(self.flows)
        return len(self.component(component))

    def cross_rack_bytes(self, component: Optional[TrafficComponent | str] = None) -> float:
        flows = self.flows if component is None else self.component(component)
        return sum(flow.size for flow in flows if flow.cross_rack)

    # -- serialisation -----------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> None:
        """Write one meta line followed by one line per flow."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"meta": self.meta.to_dict()}) + "\n")
            for flow in self.flows:
                handle.write(json.dumps(flow.to_dict()) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "JobTrace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if "meta" not in header:
                raise ValueError(f"{path}: first line must hold the capture meta")
            meta = CaptureMeta.from_dict(header["meta"])
            flows = [FlowRecord.from_dict(json.loads(line))
                     for line in handle if line.strip()]
        return cls(meta=meta, flows=flows)


def save_traces(traces: Iterable[JobTrace], directory: str | Path) -> List[Path]:
    """Write each trace to ``<directory>/<job_id>.jsonl``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for trace in traces:
        path = directory / f"{trace.meta.job_id}.jsonl"
        trace.to_jsonl(path)
        paths.append(path)
    return paths


def load_traces(directory: str | Path) -> List[JobTrace]:
    """Load every ``*.jsonl`` trace in a directory, sorted by name."""
    directory = Path(directory)
    return [JobTrace.from_jsonl(path) for path in sorted(directory.glob("*.jsonl"))]
