"""Capture anonymisation for sharing traces.

Real captures leak infrastructure details — host names, job names,
absolute timestamps.  Keddah-style traffic models only need the
*structure* (sizes, timings relative to submission, ports, racks), so a
capture can be anonymised losslessly for modelling purposes:

* host names → salted pseudonyms (stable within a salt, unlinkable
  across salts; rack ids are structural and kept),
* job ids → positional pseudonyms,
* timestamps → rebased to the job submission,
* free-text metadata fields dropped.

Anonymising then fitting yields bit-identical models to fitting the
original, which the tests assert.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace


def _pseudonym(name: str, salt: str, prefix: str = "node") -> str:
    digest = hashlib.sha256(f"{salt}:{name}".encode("utf-8")).hexdigest()
    return f"{prefix}-{digest[:10]}"


def anonymize_trace(trace: JobTrace, salt: str,
                    rebase_time: bool = True) -> JobTrace:
    """Return an anonymised copy of ``trace``.

    The same ``salt`` maps the same host to the same pseudonym across
    traces (so cross-trace structure survives); different salts are
    unlinkable.
    """
    if not salt:
        raise ValueError("anonymisation salt must be non-empty")
    origin = trace.meta.submit_time if rebase_time else 0.0
    job_alias = _pseudonym(trace.meta.job_id, salt, prefix="job")
    flows: List[FlowRecord] = []
    for flow in trace.flows:
        flows.append(FlowRecord(
            src=_pseudonym(flow.src, salt),
            dst=_pseudonym(flow.dst, salt),
            src_rack=flow.src_rack,
            dst_rack=flow.dst_rack,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            size=flow.size,
            start=flow.start - origin,
            end=flow.end - origin,
            component=flow.component,
            service=flow.service,
            job_id=job_alias if flow.job_id else "",
            flow_id=flow.flow_id,
        ))
    meta = CaptureMeta(
        job_id=job_alias,
        job_kind=trace.meta.job_kind,  # the model's key; not identifying
        input_bytes=trace.meta.input_bytes,
        cluster=_structural_cluster(trace.meta.cluster),
        hadoop=dict(trace.meta.hadoop),
        seed=0,
        submit_time=trace.meta.submit_time - origin,
        finish_time=trace.meta.finish_time - origin,
        num_maps=trace.meta.num_maps,
        num_reduces=trace.meta.num_reduces,
        extra={"anonymized": True},
    )
    return JobTrace(meta=meta, flows=flows)


def anonymize_traces(traces: Iterable[JobTrace], salt: str,
                     rebase_time: bool = True) -> List[JobTrace]:
    """Anonymise a set of traces under one salt (consistent pseudonyms)."""
    return [anonymize_trace(trace, salt, rebase_time=rebase_time)
            for trace in traces]


_STRUCTURAL_CLUSTER_KEYS = (
    "num_nodes", "hosts_per_rack", "topology", "host_gbps",
    "oversubscription", "disk_read_rate", "disk_write_rate",
    "containers_per_node", "hop_latency_s", "node_speed_sigma",
)


def _structural_cluster(cluster: Dict) -> Dict:
    """Keep only the structural cluster fields (drop anything else)."""
    return {key: cluster[key] for key in _STRUCTURAL_CLUSTER_KEYS
            if key in cluster}
