"""Keddah stage 1 — capture.

Turns raw traffic into labelled per-flow records grouped by job:

* :mod:`repro.capture.records` — the :class:`FlowRecord` /
  :class:`JobTrace` data model with a stable JSONL codec (the interface
  between capture and the modelling stage; real pcap-derived data in
  the same shape slots straight in);
* :mod:`repro.capture.pcap` — a pcap-like packet trace codec and a
  packet→flow assembler, exercising the same reduction Keddah performs
  on tcpdump output;
* :mod:`repro.capture.classifier` — port-based classification of flows
  into Hadoop traffic components (HDFS read / HDFS write / shuffle /
  control), validated against simulator ground truth in tests;
* :mod:`repro.capture.collector` — hooks a
  :class:`~repro.net.network.FlowNetwork` and materialises a
  :class:`JobTrace` per executed job.
"""

from repro.capture.anonymize import anonymize_trace, anonymize_traces
from repro.capture.classifier import classify_flow
from repro.capture.collector import FlowCollector
from repro.capture.merge import deduplicate_flows, estimate_clock_skew, merge_captures
from repro.capture.pcap import PacketRecord, assemble_flows, read_packets, synthesize_packets, write_packets
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace, TrafficComponent

__all__ = [
    "CaptureMeta",
    "anonymize_trace",
    "anonymize_traces",
    "FlowCollector",
    "FlowRecord",
    "JobTrace",
    "PacketRecord",
    "TrafficComponent",
    "assemble_flows",
    "classify_flow",
    "deduplicate_flows",
    "estimate_clock_skew",
    "merge_captures",
    "read_packets",
    "synthesize_packets",
    "write_packets",
]
