"""Merging captures from multiple vantage points.

The paper's capture stage runs tcpdump on *every* cluster NIC, so each
flow is observed twice — once at the sender, once at the receiver —
and each host's clock drifts a little.  Before modelling, the captures
must be merged:

1. :func:`estimate_clock_skew` — per-vantage-point offsets relative to
   a reference, estimated from the start-time differences of flows both
   points observed (the sender's observation leads by ~one-way delay,
   which this treats as part of the skew — fine at capture resolution);
2. :func:`apply_clock_skew` — shift one capture's timeline;
3. :func:`deduplicate_flows` — collapse dual observations of the same
   connection, preferring the sender-side record (its byte count is
   complete even when the receiver trace was truncated);
4. :func:`merge_captures` — the composed pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.capture.records import FlowRecord

_FlowKey = Tuple[str, str, int, int]


def _key(flow: FlowRecord) -> _FlowKey:
    return (flow.src, flow.dst, flow.src_port, flow.dst_port)


def estimate_clock_skew(reference: Iterable[FlowRecord],
                        other: Iterable[FlowRecord]) -> float:
    """Median start-time offset of ``other`` relative to ``reference``.

    Only flows observed by both vantage points (same 5-tuple, nearest
    start) contribute.  Returns 0.0 when there is no overlap.
    """
    reference_by_key: Dict[_FlowKey, List[float]] = {}
    for flow in reference:
        reference_by_key.setdefault(_key(flow), []).append(flow.start)
    offsets = []
    for flow in other:
        starts = reference_by_key.get(_key(flow))
        if not starts:
            continue
        nearest = min(starts, key=lambda s: abs(s - flow.start))
        offsets.append(flow.start - nearest)
    if not offsets:
        return 0.0
    return float(np.median(offsets))


def apply_clock_skew(flows: Iterable[FlowRecord], offset: float) -> List[FlowRecord]:
    """Return copies with ``offset`` subtracted from start/end."""
    shifted = []
    for flow in flows:
        data = flow.to_dict()
        data["start"] = flow.start - offset
        data["end"] = flow.end - offset
        shifted.append(FlowRecord.from_dict(data))
    return shifted


def deduplicate_flows(flows: Iterable[FlowRecord],
                      window: float = 1.0) -> List[FlowRecord]:
    """Collapse dual observations of one connection.

    Two records are duplicates when they share a 5-tuple and start
    within ``window`` seconds of each other.  The record with the larger
    byte count wins (a truncated observation undercounts); ties keep
    the earlier one.  Output is sorted by start time.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    by_key: Dict[_FlowKey, List[FlowRecord]] = {}
    for flow in sorted(flows, key=lambda f: (f.start, f.flow_id)):
        bucket = by_key.setdefault(_key(flow), [])
        merged = False
        for index, existing in enumerate(bucket):
            if abs(existing.start - flow.start) <= window:
                if flow.size > existing.size:
                    bucket[index] = flow
                merged = True
                break
        if not merged:
            bucket.append(flow)
    result = [flow for bucket in by_key.values() for flow in bucket]
    result.sort(key=lambda f: (f.start, f.flow_id))
    return result


def merge_captures(captures: Mapping[str, Iterable[FlowRecord]],
                   reference: Optional[str] = None,
                   window: float = 1.0) -> List[FlowRecord]:
    """Skew-correct every vantage point to ``reference`` and deduplicate.

    ``captures`` maps vantage-point names (host names) to their flow
    records; ``reference`` defaults to the lexicographically first
    point.  Returns one merged, time-sorted flow list.
    """
    if not captures:
        return []
    names = sorted(captures)
    reference_name = reference if reference is not None else names[0]
    if reference_name not in captures:
        raise KeyError(f"reference vantage point {reference_name!r} not in captures")
    reference_flows = list(captures[reference_name])
    merged: List[FlowRecord] = list(reference_flows)
    for name in names:
        if name == reference_name:
            continue
        flows = list(captures[name])
        offset = estimate_clock_skew(reference_flows, flows)
        merged.extend(apply_clock_skew(flows, offset))
    return deduplicate_flows(merged, window=window)
