"""Flow collector: observes the network and materialises job traces.

Plays the role of the cluster-wide tcpdump in the paper's toolchain.
The collector subscribes to a
:class:`~repro.net.backend.TransportBackend` (any substrate)
and converts every completed non-local flow into a
:class:`~repro.capture.records.FlowRecord`.  Host-local transfers are
skipped — a NIC capture never sees loopback disk I/O.

Per-job traces are cut the way a capture window would be: flows
carrying the job's id, plus unattributed control-plane flows whose
lifetime overlaps the job's execution window.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace, TrafficComponent
from repro.net.flow import Flow
from repro.net.backend import TransportBackend


class FlowCollector:
    """Accumulates flow records from a live network simulation."""

    def __init__(self, network: TransportBackend, include_local: bool = False):
        self.network = network
        self.include_local = include_local
        self.records: List[FlowRecord] = []
        network.add_listener(self._on_flow_complete)

    def _on_flow_complete(self, flow: Flow) -> None:
        if flow.local and not self.include_local:
            return
        metadata = flow.metadata
        self.records.append(FlowRecord(
            src=flow.src.name,
            dst=flow.dst.name,
            src_rack=flow.src.rack,
            dst_rack=flow.dst.rack,
            src_port=int(metadata.get("src_port", 0)),
            dst_port=int(metadata.get("dst_port", 0)),
            size=flow.size,
            start=flow.start_time,
            end=flow.end_time if flow.end_time is not None else flow.start_time,
            component=str(metadata.get("component", TrafficComponent.OTHER.value)),
            service=str(metadata.get("service", "")),
            job_id=str(metadata.get("job_id", "")),
            flow_id=flow.flow_id,
        ))

    # -- trace extraction --------------------------------------------------------

    def flows_for_job(self, job_id: str, window_start: float,
                      window_end: float) -> List[FlowRecord]:
        """The job's own flows plus overlapping shared control traffic."""
        selected = []
        for record in self.records:
            if record.job_id == job_id:
                selected.append(record)
            elif (not record.job_id
                  and record.component == TrafficComponent.CONTROL.value
                  and record.start < window_end and record.end >= window_start):
                selected.append(record)
        return selected

    def flows_for_jobs(self, job_ids: List[str], window_start: float,
                       window_end: float) -> List[FlowRecord]:
        """Union capture for several jobs (a workload plan's stages).

        One merged cut, not per-job cuts concatenated: shared control
        flows overlapping the window appear exactly once even when
        several stage windows overlap them.
        """
        wanted = set(job_ids)
        selected = []
        for record in self.records:
            if record.job_id in wanted:
                selected.append(record)
            elif (not record.job_id
                  and record.component == TrafficComponent.CONTROL.value
                  and record.start < window_end and record.end >= window_start):
                selected.append(record)
        return selected

    def trace_for_job(self, meta: CaptureMeta,
                      extra_meta: Optional[Dict[str, Any]] = None) -> JobTrace:
        """Cut the capture into one job's :class:`JobTrace`."""
        if extra_meta:
            meta.extra.update(extra_meta)
        flows = self.flows_for_job(meta.job_id, meta.submit_time, meta.finish_time)
        return JobTrace(meta=meta, flows=flows)

    def total_bytes(self) -> float:
        return sum(record.size for record in self.records)

    def clear(self) -> None:
        self.records.clear()
