"""Port-based classification of flows into Hadoop traffic components.

This is the rule set Keddah applies to reduced tcpdump output: Hadoop
daemons sit on well-known ports, so the (src_port, dst_port) pair of a
connection identifies the service, and the *direction* of the data
relative to the DataNode transfer port separates HDFS reads (DataNode
is the sender) from HDFS writes (DataNode is the receiver).

The simulator stamps ground-truth component labels on every flow it
creates; tests assert that this classifier reconstructs those labels
from ports alone, which is the fidelity claim the capture stage makes.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.capture.records import FlowRecord, TrafficComponent
from repro.cluster import ports

_CONTROL_PORTS = {
    ports.NAMENODE_RPC,
    ports.RM_SCHEDULER,
    ports.RM_TRACKER,
    ports.RM_CLIENT,
    ports.NM_IPC,
}


def classify_ports(src_port: int, dst_port: int) -> TrafficComponent:
    """Map a (src_port, dst_port) pair to a traffic component."""
    if src_port == ports.DATANODE_XFER:
        return TrafficComponent.HDFS_READ
    if dst_port == ports.DATANODE_XFER:
        return TrafficComponent.HDFS_WRITE
    if src_port == ports.SHUFFLE_HANDLER or dst_port == ports.SHUFFLE_HANDLER:
        return TrafficComponent.SHUFFLE
    if src_port in _CONTROL_PORTS or dst_port in _CONTROL_PORTS:
        return TrafficComponent.CONTROL
    return TrafficComponent.OTHER


def classify_flow(flow: FlowRecord) -> TrafficComponent:
    """Classify one flow record by its ports."""
    return classify_ports(flow.src_port, flow.dst_port)


def relabel(flows: Iterable[FlowRecord]) -> List[FlowRecord]:
    """Return copies of ``flows`` with ``component`` set by the classifier.

    Used when ingesting external captures that carry no labels.
    """
    relabelled = []
    for flow in flows:
        data = flow.to_dict()
        data["component"] = classify_flow(flow).value
        relabelled.append(FlowRecord.from_dict(data))
    return relabelled


def classification_accuracy(flows: Iterable[FlowRecord]) -> float:
    """Fraction of flows whose port-based class matches their label.

    Only meaningful on simulator-produced flows (which carry ground
    truth); returns 1.0 for an empty input.
    """
    total = 0
    correct = 0
    for flow in flows:
        total += 1
        if classify_flow(flow).value == flow.component:
            correct += 1
    return correct / total if total else 1.0
