"""Failure injection: node deaths and the traffic they generate.

Hadoop's network behaviour includes a component single-job captures on
healthy clusters never show: **recovery traffic**.  This module injects
node failures into a running :class:`~repro.mapreduce.cluster.
HadoopCluster` and models the two recovery paths:

* **HDFS re-replication** — when a DataNode dies the NameNode prunes it
  from every replica set and schedules new replicas for the
  under-replicated blocks.  Each restoration is a DataNode→DataNode
  transfer of the full block (classified ``hdfs_write``, service
  ``re-replication``), throttled to a configurable number of concurrent
  streams like ``dfs.namenode.replication.max-streams``.
* **task re-execution** — when a NodeManager dies the ResourceManager
  expires its containers; AppMasters re-queue the killed tasks, whose
  re-runs regenerate read/shuffle/write traffic on other nodes.  A lost
  AppMaster container fails its job (AM restart is not modelled).

Committed map outputs die with their node: a reducer whose fetch
targets a dead host triggers *fetch-failure recovery* in the AppMaster
(the map output is re-created on a live node — split re-read plus
recompute — before the fetch proceeds), matching Hadoop's
re-run-the-map-attempt semantics and its traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.mapreduce.cluster import HadoopCluster
from repro.simkit.resources import Resource

DATANODE = "datanode"
NODEMANAGER = "nodemanager"
NODE = "node"  # both daemons at once (machine crash)
DECOMMISSION = "decommission"  # graceful DataNode drain (planned)

_KINDS = (DATANODE, NODEMANAGER, NODE, DECOMMISSION)


@dataclass(frozen=True)
class FaultEvent:
    """Kill one daemon (or the whole machine) at a point in time."""

    time: float
    kind: str
    host_name: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")


@dataclass
class FaultReport:
    """What the injector did and what recovery it triggered.

    ``injected`` lists only the events that actually took a daemon
    down; events whose every target daemon was already claimed by an
    earlier event on the same host count in ``duplicates_ignored``
    instead.
    """

    injected: List[FaultEvent] = field(default_factory=list)
    blocks_rereplicated: int = 0
    rereplication_bytes: float = 0.0
    containers_lost: int = 0
    unrecoverable_blocks: int = 0
    duplicates_ignored: int = 0


class FaultInjector:
    """Schedules a fault plan against a cluster before ``run()``.

    Usage::

        cluster = HadoopCluster(spec, config, seed=1)
        injector = FaultInjector(cluster, [FaultEvent(5.0, "node", "h003")])
        results, traces = cluster.run([job])
        print(injector.report.rereplication_bytes)
    """

    def __init__(self, cluster: HadoopCluster, plan: List[FaultEvent],
                 max_replication_streams: int = 2):
        if max_replication_streams < 1:
            raise ValueError("max_replication_streams must be >= 1")
        self.cluster = cluster
        self.plan = sorted(plan, key=lambda event: event.time)
        self.report = FaultReport()
        # Each (host, daemon) pair dies at most once.  Overlapping plan
        # entries — duplicate events, a DATANODE kill racing a NODE
        # crash, a crash landing mid-decommission — would otherwise
        # re-prune replica sets and schedule a second round of
        # re-replication for blocks the first round already restored.
        self._claimed: set = set()
        self._streams = Resource(cluster.sim, max_replication_streams,
                                 name="re-replication-streams")
        by_name = {host.name: host for host in cluster.workers}
        for event in self.plan:
            if event.host_name not in by_name:
                raise ValueError(f"fault targets unknown worker {event.host_name!r}")
            cluster.sim.schedule_at(event.time, self._inject, event)

    # -- injection ---------------------------------------------------------------

    def _claim(self, host_name: str, daemon: str) -> bool:
        """Claim (host, daemon) for one event; False if already down."""
        key = (host_name, daemon)
        if key in self._claimed:
            return False
        self._claimed.add(key)
        return True

    def _inject(self, event: FaultEvent) -> None:
        host = next(h for h in self.cluster.workers if h.name == event.host_name)
        applied = False
        if event.kind == DECOMMISSION:
            if self._claim(host.name, DATANODE):
                applied = True
                self.cluster.sim.process(self._decommission(host),
                                         name=f"decommission[{host.name}]")
        else:
            if event.kind in (DATANODE, NODE) and self._claim(host.name, DATANODE):
                applied = True
                self._kill_datanode(host)
            if event.kind in (NODEMANAGER, NODE) and self._claim(host.name,
                                                                 NODEMANAGER):
                applied = True
                self._kill_nodemanager(host)
        if applied:
            self.report.injected.append(event)
        else:
            self.report.duplicates_ignored += 1

    def _lost(self, location, dying) -> bool:
        """True when no live replica outlives ``dying`` — actual data
        loss, as opposed to a full cluster merely having no spare
        target to copy to (the block survives on its other replicas)."""
        namenode = self.cluster.namenode
        return not any(replica is not dying and not namenode.is_dead(replica)
                       for replica in location.replicas)

    def _decommission(self, host):
        """Graceful DataNode drain: copy replicas away, then retire.

        The node keeps serving reads (and its NodeManager keeps running
        tasks — HDFS and YARN decommission independently) until every
        replica has been copied elsewhere.
        """
        namenode = self.cluster.namenode
        locations = namenode.start_decommission(host)
        children = []
        for location in locations:
            action = namenode.choose_rereplication(location)
            if action is None:
                if self._lost(location, host):
                    self.report.unrecoverable_blocks += 1
                continue
            source, target = action
            children.append(self.cluster.sim.process(
                self._rereplicate(location, source, target),
                name=f"decommission-copy[{location.block.block_id}]"))
        if children:
            yield self.cluster.sim.all_of(children)
        namenode.finish_decommission(host)
        datanode = self.cluster.datanodes.get(host)
        if datanode is not None:
            datanode.stop_heartbeats()

    def _kill_datanode(self, host) -> None:
        datanode = self.cluster.datanodes.get(host)
        if datanode is not None:
            datanode.stop_heartbeats()
        under_replicated = self.cluster.namenode.mark_dead(host)
        for location in under_replicated:
            action = self.cluster.namenode.choose_rereplication(location)
            if action is None:
                if self._lost(location, host):
                    self.report.unrecoverable_blocks += 1
                continue
            source, target = action
            self.cluster.sim.process(
                self._rereplicate(location, source, target),
                name=f"re-replicate[{location.block.block_id}]")

    def _kill_nodemanager(self, host) -> None:
        node = next((nm for nm in self.cluster.nodemanagers if nm.host == host),
                    None)
        if node is None:
            return
        lost = self.cluster.rm.fail_node(node)
        self.report.containers_lost += len(lost)

    # -- recovery traffic -----------------------------------------------------------

    def _rereplicate(self, location, source, target):
        grant = self._streams.acquire()
        yield grant
        try:
            datanode = self.cluster.datanodes.get(target)
            max_rate = datanode.disk_write_rate if datanode else None
            flow = self.cluster.net.start_flow(
                source, target, location.block.size, max_rate=max_rate,
                metadata={
                    "component": TrafficComponent.HDFS_WRITE.value,
                    "service": "re-replication",
                    "block_id": location.block.block_id,
                    "src_port": ports.ephemeral_port(
                        f"rerep-{location.block.block_id}-{source.name}"),
                    "dst_port": ports.DATANODE_XFER,
                })
            yield flow.done
            self.report.blocks_rereplicated += 1
            self.report.rereplication_bytes += location.block.size
        finally:
            self._streams.release()
