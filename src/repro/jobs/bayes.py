"""Naive Bayes training (HiBench's ``bayes``): aggregation-heavy ML.

Maps tokenise documents and emit (term, class) count pairs — a larger
intermediate set than WordCount's (no cross-class combining) but still
far below the input — and reducers fold them into the model's
conditional probability tables, a compact output.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("bayes")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="bayes",
        map_selectivity=0.3,      # term/class pairs survive the combiner
        reduce_selectivity=0.1,   # folded into probability tables
        map_cpu_rate=55.0 * MB,   # tokenise + feature extraction
        reduce_cpu_rate=75.0 * MB,
        partition_skew=0.9,       # Zipfian vocabulary
        map_jitter_sigma=0.2,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
