"""WordCount: combiner-driven aggregation.

The map-side combiner collapses repeated words before the shuffle, so
only a small fraction of the input crosses the network, and reducers
aggregate further before writing a compact result.  Word frequencies
are heavy-tailed, which shows up as reducer partition skew.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("wordcount")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="wordcount",
        map_selectivity=0.15,    # combiner collapses duplicates
        reduce_selectivity=0.35,
        map_cpu_rate=70.0 * MB,  # tokenising is CPU-heavier than sorting
        reduce_cpu_rate=80.0 * MB,
        partition_skew=0.8,      # Zipfian word distribution
        map_jitter_sigma=0.2,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
