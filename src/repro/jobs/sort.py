"""Sort: identity map/reduce with fully replicated output.

The stock ``Sort`` example differs from TeraSort on the wire only in
its output path: the result is written at the configured replication
factor, so HDFS-write traffic is (replication − 1)× the input size on
top of the full shuffle.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("sort")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="sort",
        map_selectivity=1.0,
        reduce_selectivity=1.0,
        map_cpu_rate=120.0 * MB,
        reduce_cpu_rate=90.0 * MB,
        output_replication=None,  # cluster default (typically 3)
        partition_skew=0.3,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
