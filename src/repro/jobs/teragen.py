"""TeraGen: the map-only data generator.

Maps synthesise rows locally and write them straight to HDFS — there is
no input to read and no shuffle, so the job's network footprint is pure
replication-pipeline traffic.  ``input_bytes`` of the spec is
interpreted as the amount of data to *generate*.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("teragen")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="teragen",
        map_selectivity=1.0,
        generated_bytes_per_map=1024.0 * MB,  # one task per GiB by default
        map_cpu_rate=200.0 * MB,              # row synthesis is cheap
        output_replication=None,              # cluster default
        map_jitter_sigma=0.05,
        map_only=True,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
