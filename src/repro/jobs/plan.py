"""Workload plans: multi-stage DAG jobs as first-class workloads.

A :class:`WorkloadPlan` is a DAG of :class:`PlanStage` nodes.  Each
stage is one MapReduce job (any catalog kind); its input is either
*external* bytes (root stages, ``input_gb``) or the HDFS output of one
or more upstream stages (:class:`PlanEdge`, with a per-edge
``carryover`` fraction selecting how much of the upstream output the
stage consumes).  This is the shape of real chained Hadoop workloads —
Pig/Hive query plans and benchmark suites like TPCx-HS — whose network
behaviour measurably differs from isolated MapReduce jobs: cross-stage
data travels through the real HDFS write/read path, so it shows up on
the wire as replication-pipeline and split-read traffic.

Identity boundary
-----------------
``WorkloadPlan.single(spec)`` wraps one explicit
:class:`~repro.jobs.base.JobSpec` as a *trivial* plan.  The executor
runs a trivial plan through the exact legacy single-job path (same job
id, same RNG streams, same event ordering), so its capture is
byte-identical to ``HadoopCluster.run([spec])`` — the contract that
lets the plan machinery subsume the single-job path without
invalidating anything built on it.

Determinism
-----------
Declarative plans carry no run state: stage job ids derive from the
plan signature (a SHA-256 over the canonical plan dict) plus the stage
name, so every stage gets its own deterministic RNG streams
(``job.<job_id>.r<k>``) from the cluster seed regardless of execution
order or how many plans ran before it in the process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cluster.units import MB
from repro.jobs.base import JobSpec


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class PlanEdge:
    """One dependency edge: this stage reads ``source``'s HDFS output.

    ``carryover`` is the fraction of the upstream output the stage
    consumes (0 < carryover <= 1).  Selection is file-granular: the
    executor picks a deterministic sorted prefix of the upstream part
    files whose cumulative size first reaches the fraction, mirroring
    how a downstream job would list and read a subset of partitions.
    """

    source: str
    carryover: float = 1.0

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("plan edge needs a source stage name")
        if not (0.0 < self.carryover <= 1.0):
            raise ValueError(
                f"carryover must be in (0, 1], got {self.carryover} "
                f"(edge from {self.source!r})")

    def to_dict(self) -> Dict[str, Any]:
        return {"source": self.source, "carryover": self.carryover}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanEdge":
        return cls(source=data["source"],
                   carryover=float(data.get("carryover", 1.0)))


@dataclass(frozen=True)
class PlanStage:
    """One job in a plan: a catalog kind plus how it gets its input.

    Root stages (no ``inputs``) declare external ``input_gb`` —
    preloaded into HDFS for readers, synthesised on the fly for
    generator kinds (teragen).  Derived stages leave ``input_gb`` unset;
    their input size is whatever their upstream edges deliver.
    """

    name: str
    kind: str
    input_gb: Optional[float] = None
    inputs: Tuple[PlanEdge, ...] = ()
    num_reducers: Optional[int] = None
    queue: str = "default"
    profile_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan stage needs a name")
        if "/" in self.name or "." in self.name:
            raise ValueError(
                f"stage name {self.name!r} may not contain '/' or '.' "
                "(it becomes part of HDFS paths and job ids)")
        if self.inputs and self.input_gb is not None:
            raise ValueError(
                f"stage {self.name!r} declares both upstream inputs and "
                "external input_gb; pick one")
        if not self.inputs and self.input_gb is None:
            raise ValueError(
                f"root stage {self.name!r} needs external input_gb")
        if self.input_gb is not None and self.input_gb <= 0:
            raise ValueError(
                f"stage {self.name!r}: input_gb must be > 0")
        sources = [edge.source for edge in self.inputs]
        if len(set(sources)) != len(sources):
            raise ValueError(
                f"stage {self.name!r} reads the same upstream twice")

    @property
    def is_root(self) -> bool:
        return not self.inputs

    def dep_names(self) -> List[str]:
        return [edge.source for edge in self.inputs]

    def overrides(self) -> Dict[str, Any]:
        return dict(self.profile_overrides)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "input_gb": self.input_gb,
                "inputs": [edge.to_dict() for edge in self.inputs],
                "num_reducers": self.num_reducers,
                "queue": self.queue,
                "profile_overrides": dict(self.profile_overrides)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanStage":
        return cls(name=data["name"], kind=data["kind"],
                   input_gb=data.get("input_gb"),
                   inputs=tuple(PlanEdge.from_dict(edge)
                                for edge in data.get("inputs", ())),
                   num_reducers=data.get("num_reducers"),
                   queue=data.get("queue", "default"),
                   profile_overrides=_freeze(data.get("profile_overrides")))


@dataclass(frozen=True)
class WorkloadPlan:
    """A named DAG of stages, ready for the plan executor.

    ``params`` records what the registry factory was called with (so
    captures can report e.g. the TPCx-HS scale factor); ``score_rule``
    names an optional scoring rule the analysis layer applies
    (``"hsph"`` for TPCx-HS-style GB-per-hour scores).  ``wrapped``
    holds the verbatim :class:`JobSpec` of a trivial plan built via
    :meth:`single`.
    """

    name: str
    stages: Tuple[PlanStage, ...]
    params: Tuple[Tuple[str, Any], ...] = ()
    score_rule: str = ""
    wrapped: Optional[JobSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan needs a name")
        if not self.stages:
            raise ValueError(f"plan {self.name!r} has no stages")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"plan {self.name!r} has duplicate stage names")
        known = set(names)
        for stage in self.stages:
            for dep in stage.dep_names():
                if dep not in known:
                    raise ValueError(
                        f"plan {self.name!r}: stage {stage.name!r} reads "
                        f"unknown stage {dep!r}")
                if dep == stage.name:
                    raise ValueError(
                        f"plan {self.name!r}: stage {stage.name!r} reads "
                        "itself")
        self.topological_order()  # raises on cycles

    # -- structure ------------------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """True for a single wrapped JobSpec (the legacy identity path)."""
        return self.wrapped is not None

    def stage(self, name: str) -> PlanStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"plan {self.name!r} has no stage {name!r}")

    def roots(self) -> List[PlanStage]:
        return [stage for stage in self.stages if stage.is_root]

    def topological_order(self) -> List[PlanStage]:
        """Stages in dependency order (declaration order breaks ties)."""
        remaining = {stage.name: set(stage.dep_names())
                     for stage in self.stages}
        order: List[PlanStage] = []
        while remaining:
            ready = [stage for stage in self.stages
                     if stage.name in remaining
                     and not remaining[stage.name]]
            if not ready:
                cyclic = sorted(remaining)
                raise ValueError(
                    f"plan {self.name!r} has a dependency cycle among "
                    f"{cyclic}")
            for stage in ready:
                order.append(stage)
                del remaining[stage.name]
                for deps in remaining.values():
                    deps.discard(stage.name)
        return order

    @property
    def external_gb(self) -> float:
        """Total external input across root stages, in GiB."""
        return sum(stage.input_gb or 0.0 for stage in self.stages)

    # -- identity -------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plan dict — the signature (and store-key) source."""
        data: Dict[str, Any] = {
            "name": self.name,
            "stages": [stage.to_dict() for stage in self.stages],
            "params": dict(self.params),
            "score_rule": self.score_rule,
        }
        if self.wrapped is not None:
            spec = self.wrapped
            data["wrapped"] = {"kind": spec.kind, "job_id": spec.job_id,
                               "input_bytes": spec.input_bytes,
                               "num_reducers": spec.num_reducers,
                               "queue": spec.queue}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadPlan":
        """Rebuild a declarative plan (wrapped specs do not round-trip)."""
        if "wrapped" in data:
            raise ValueError(
                "trivial plans wrap a live JobSpec and are not "
                "reconstructible from their dict")
        return cls(name=data["name"],
                   stages=tuple(PlanStage.from_dict(stage)
                                for stage in data["stages"]),
                   params=_freeze(data.get("params")),
                   score_rule=data.get("score_rule", ""))

    def signature(self) -> str:
        """SHA-256 of the canonical plan dict (stage ids derive from it)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"), default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- construction ---------------------------------------------------------------

    @classmethod
    def single(cls, spec: JobSpec, name: str = "") -> "WorkloadPlan":
        """Wrap one explicit JobSpec as a trivial plan (identity path)."""
        stage = PlanStage(name="job", kind=spec.kind,
                          input_gb=max(spec.input_bytes / (1024 * MB), 1e-9),
                          num_reducers=spec.num_reducers, queue=spec.queue)
        return cls(name=name or f"single-{spec.kind}", stages=(stage,),
                   wrapped=spec)


# -- the plan catalog ----------------------------------------------------------------

_PLAN_REGISTRY: Dict[str, Callable[..., WorkloadPlan]] = {}


def register_plan(name: str):
    """Decorator: register a plan factory under a plan name."""
    def decorator(factory: Callable[..., WorkloadPlan]):
        if name in _PLAN_REGISTRY:
            raise ValueError(f"plan {name!r} registered twice")
        _PLAN_REGISTRY[name] = factory
        return factory
    return decorator


def plan_catalog() -> Dict[str, Callable[..., WorkloadPlan]]:
    """All registered plan factories, by name."""
    return dict(_PLAN_REGISTRY)


def make_plan(name: str, **params: Any) -> WorkloadPlan:
    """Uniform factory: a built-in plan by name, parameterised."""
    factory = _PLAN_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown plan {name!r}; known: {sorted(_PLAN_REGISTRY)}")
    try:
        return factory(**params)
    except TypeError as exc:
        raise ValueError(f"plan {name!r}: bad parameters: {exc}") from exc


# -- built-in plans ------------------------------------------------------------------


@register_plan("pig-aggregation")
def pig_aggregation(input_gb: float = 1.0,
                    num_reducers: Optional[int] = None) -> WorkloadPlan:
    """Pig/Hive-style query plan: two scans feeding a join, then a sort.

    Two root scans read the same external volume — a selective filter
    (grep) and a combiner-driven aggregation (wordcount) — and their
    outputs meet in a reduce-side join whose result is totally ordered
    by a final sort.  The fan-in stage starts only once *both* roots
    have committed their HDFS output, while the roots themselves are
    admitted concurrently under the YARN scheduler, which is exactly
    the traffic pattern that distinguishes Pig chains from isolated
    MapReduce jobs.
    """
    return WorkloadPlan(
        name="pig-aggregation",
        params=_freeze({"input_gb": input_gb}),
        stages=(
            PlanStage(name="extract", kind="grep", input_gb=input_gb,
                      num_reducers=num_reducers),
            PlanStage(name="aggregate", kind="wordcount", input_gb=input_gb,
                      num_reducers=num_reducers),
            PlanStage(name="join", kind="join",
                      inputs=(PlanEdge("extract"), PlanEdge("aggregate")),
                      num_reducers=num_reducers),
            PlanStage(name="order", kind="sort",
                      inputs=(PlanEdge("join"),),
                      num_reducers=num_reducers),
        ))


@register_plan("tpcx-hs")
def tpcx_hs(scale: float = 1.0,
            num_reducers: Optional[int] = None) -> WorkloadPlan:
    """TPCx-HS-style harness: HSGen → HSSort → HSValidate.

    ``scale`` is the dataset size in GiB (the benchmark's scale factors
    are TB-denominated; GiB keeps simulated runs tractable while
    preserving the phase structure).  HSGen synthesises the dataset
    (pure replication-pipeline traffic), HSSort is the full
    shuffle-heavy sort over it, and HSValidate re-reads the sorted
    output in a map-only scan that writes a tiny report.  The capture
    reports a single HSph-style score — scale over elapsed hours — on
    top of the per-phase network breakdowns.
    """
    return WorkloadPlan(
        name="tpcx-hs",
        params=_freeze({"scale": scale}),
        score_rule="hsph",
        stages=(
            PlanStage(name="hsgen", kind="teragen", input_gb=scale,
                      num_reducers=num_reducers),
            PlanStage(name="hssort", kind="terasort",
                      inputs=(PlanEdge("hsgen"),),
                      num_reducers=num_reducers),
            PlanStage(name="hsvalidate", kind="grep",
                      inputs=(PlanEdge("hssort"),),
                      profile_overrides=_freeze({"map_only": True})),
        ))
