"""PageRank: iterative, output-chained graph processing.

Each iteration is a full MapReduce round: maps emit rank contributions
along edges (slightly inflating the data — ranks plus the link
structure travel together), reducers combine contributions into the
next rank vector, and the round's output becomes the next round's
input.  Traffic therefore repeats per iteration with a slowly shrinking
volume, which is the signature the capture stage should exhibit.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("pagerank")
def profile(iterations: int = 3, **overrides) -> JobProfile:
    defaults = dict(
        kind="pagerank",
        map_selectivity=1.2,      # contributions + link structure
        reduce_selectivity=0.75,  # combined back into rank+adjacency
        map_cpu_rate=90.0 * MB,
        reduce_cpu_rate=85.0 * MB,
        iterations=iterations,
        reread_input=False,       # round k+1 consumes round k's output
        output_carryover=1.0,
        partition_skew=0.6,       # power-law vertex degrees
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
