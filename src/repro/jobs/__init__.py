"""Workload library: MapReduce job profiles.

Profiles cover the spectrum of MapReduce behaviours the paper's
workload suite (HiBench-style) spans:

=============  ==========================  ============================
job            traffic character            profile module
=============  ==========================  ============================
terasort       shuffle-heavy 1:1:1          :mod:`repro.jobs.terasort`
sort           terasort w/ replicated out   :mod:`repro.jobs.sort`
wordcount      aggregation (combiner)       :mod:`repro.jobs.wordcount`
grep           filter, near-empty shuffle   :mod:`repro.jobs.grep`
pagerank       iterative, output-chained    :mod:`repro.jobs.pagerank`
kmeans         iterative, input re-read     :mod:`repro.jobs.kmeans`
join           two-input shuffle join       :mod:`repro.jobs.join`
teragen        map-only generator           :mod:`repro.jobs.teragen`
dfsio          HDFS I/O micro-benchmarks    :mod:`repro.jobs.dfsio`
=============  ==========================  ============================

``make_job(kind, input_gb, ...)`` is the uniform factory used by the
experiment harness.  Multi-stage workloads (Pig/Hive chains, TPCx-HS)
compose these profiles into :class:`~repro.jobs.plan.WorkloadPlan`
DAGs; ``make_plan(name, ...)`` is the corresponding plan factory.
"""

from repro.jobs.base import JobIdStream, JobProfile, JobSpec, job_catalog, make_job
from repro.jobs.plan import PlanEdge, PlanStage, WorkloadPlan, make_plan, plan_catalog

__all__ = [
    "JobIdStream",
    "JobProfile",
    "JobSpec",
    "PlanEdge",
    "PlanStage",
    "WorkloadPlan",
    "job_catalog",
    "make_job",
    "make_plan",
    "plan_catalog",
]
