"""Workload library: MapReduce job profiles.

Profiles cover the spectrum of MapReduce behaviours the paper's
workload suite (HiBench-style) spans:

=============  ==========================  ============================
job            traffic character            profile module
=============  ==========================  ============================
terasort       shuffle-heavy 1:1:1          :mod:`repro.jobs.terasort`
sort           terasort w/ replicated out   :mod:`repro.jobs.sort`
wordcount      aggregation (combiner)       :mod:`repro.jobs.wordcount`
grep           filter, near-empty shuffle   :mod:`repro.jobs.grep`
pagerank       iterative, output-chained    :mod:`repro.jobs.pagerank`
kmeans         iterative, input re-read     :mod:`repro.jobs.kmeans`
join           two-input shuffle join       :mod:`repro.jobs.join`
teragen        map-only generator           :mod:`repro.jobs.teragen`
dfsio          HDFS I/O micro-benchmarks    :mod:`repro.jobs.dfsio`
=============  ==========================  ============================

``make_job(kind, input_gb, ...)`` is the uniform factory used by the
experiment harness.
"""

from repro.jobs.base import JobProfile, JobSpec, job_catalog, make_job

__all__ = ["JobProfile", "JobSpec", "job_catalog", "make_job"]
