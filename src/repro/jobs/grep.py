"""Grep: a selective filter with a near-empty shuffle.

Maps scan their full split but emit only matching lines, so the job is
HDFS-read dominated: shuffle and output are orders of magnitude below
the input.  (Hadoop's Grep example is two chained jobs — search then
sort — but the sort phase runs over the tiny match set and is folded
into the reduce here.)
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("grep")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="grep",
        map_selectivity=0.01,
        reduce_selectivity=1.0,
        map_cpu_rate=150.0 * MB,  # regex scan streams at near disk rate
        reduce_cpu_rate=80.0 * MB,
        partition_skew=0.5,
        map_jitter_sigma=0.1,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
