"""Job profiles and job specifications.

A :class:`JobProfile` captures the *data-flow shape* of a MapReduce
application — how many bytes leave the mappers per input byte, how many
bytes the reducers write per shuffled byte, compute rates, partition
skew and (for iterative workloads) how consecutive rounds chain.  The
profile is what differentiates TeraSort from WordCount on the wire.

A :class:`JobSpec` is one concrete run: a profile plus input size and
per-run overrides.  Specs are what the cluster runtime executes and the
campaign harness sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

import numpy as np

from repro.cluster.units import MB


class JobIdStream:
    """Deterministic, instance-scoped stream of fallback job ids.

    The repo once used a single module-global ``itertools.count`` for
    every auto-assigned job id — the same process-history hazard PR 7
    removed for flow ids: the id (and therefore the job's RNG streams
    and HDFS paths) depended on how many specs *any* code had built
    before.  Ids now count per job kind within one stream instance, so
    "the 3rd terasort in this scope" is always ``job_terasort_0003`` no
    matter what other kinds were interleaved, and executors that own
    their stream (e.g. :class:`~repro.mapreduce.cluster.HadoopCluster`)
    allocate identically whether specs are built serially or
    interleaved across executors.
    """

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}

    def allocate(self, kind: str) -> str:
        number = self._next.get(kind, 0) + 1
        self._next[kind] = number
        return f"job_{kind}_{number:04d}"

    def reset(self) -> None:
        self._next.clear()


#: Process-wide fallback for bare ``JobSpec(...)`` construction; code
#: that needs reproducible ids passes an explicit ``job_id`` (campaign
#: points, plan stages) or its own :class:`JobIdStream`.
_default_ids = JobIdStream()


def default_id_stream() -> JobIdStream:
    return _default_ids


def reset_default_ids() -> None:
    """Rewind the fallback id stream (test isolation helper)."""
    _default_ids.reset()


@dataclass(frozen=True)
class JobProfile:
    """Data-flow shape of one MapReduce application type."""

    kind: str
    map_selectivity: float = 1.0
    reduce_selectivity: float = 1.0
    map_cpu_rate: float = 100.0 * MB
    reduce_cpu_rate: float = 80.0 * MB
    merge_rate: float = 250.0 * MB
    output_replication: Optional[int] = None
    partition_skew: float = 0.0
    map_jitter_sigma: float = 0.15
    generated_bytes_per_map: Optional[float] = None
    map_only: bool = False
    iterations: int = 1
    reread_input: bool = False
    output_carryover: float = 1.0
    reducers_scale: float = 1.0  # multiplier on the configured reducer count

    def __post_init__(self) -> None:
        if self.map_selectivity < 0 or self.reduce_selectivity < 0:
            raise ValueError(f"selectivities must be >= 0 in {self.kind}")
        if self.map_cpu_rate <= 0 or self.reduce_cpu_rate <= 0 or self.merge_rate <= 0:
            raise ValueError(f"compute rates must be positive in {self.kind}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1 in {self.kind}")
        if self.partition_skew < 0:
            raise ValueError(f"partition_skew must be >= 0 in {self.kind}")

    @property
    def is_generator(self) -> bool:
        """Generator jobs (TeraGen) synthesise output instead of reading input."""
        return self.generated_bytes_per_map is not None

    def partition_weights(self, num_reducers: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Per-reducer shares of every map's output.

        ``partition_skew`` is a Zipf exponent over reducer ranks; the
        rank order is shuffled per job so the heavy reducer is not
        always partition 0.  Skew 0 gives uniform shares.
        """
        if num_reducers < 1:
            raise ValueError("need at least one reducer for partition weights")
        ranks = np.arange(1, num_reducers + 1, dtype=float)
        weights = ranks ** (-self.partition_skew)
        rng.shuffle(weights)
        return weights / weights.sum()


@dataclass
class JobSpec:
    """One concrete job run."""

    profile: JobProfile
    input_bytes: float
    job_id: str = ""
    input_path: str = ""
    output_path: str = ""
    num_reducers: Optional[int] = None
    queue: str = "default"
    num_maps: Optional[int] = None  # generator jobs; derived otherwise
    seed_salt: int = 0

    def __post_init__(self) -> None:
        if self.input_bytes < 0:
            raise ValueError(f"input_bytes must be >= 0, got {self.input_bytes}")
        if not self.job_id:
            self.job_id = _default_ids.allocate(self.profile.kind)
        if not self.input_path:
            self.input_path = f"/data/{self.job_id}/input"
        if not self.output_path:
            self.output_path = f"/data/{self.job_id}/output"

    @property
    def kind(self) -> str:
        return self.profile.kind

    def with_overrides(self, **changes) -> "JobSpec":
        return replace(self, **changes)


# -- catalog -------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., JobProfile]] = {}


def register_profile(kind: str):
    """Decorator: register a profile factory under a job kind."""
    def decorator(factory: Callable[..., JobProfile]):
        if kind in _REGISTRY:
            raise ValueError(f"profile {kind!r} registered twice")
        _REGISTRY[kind] = factory
        return factory
    return decorator


def job_catalog() -> Dict[str, Callable[..., JobProfile]]:
    """All registered job kinds (importing the modules registers them)."""
    _import_all_profiles()
    return dict(_REGISTRY)


def make_job(kind: str, input_gb: float, num_reducers: Optional[int] = None,
             queue: str = "default", job_id: str = "",
             id_stream: Optional[JobIdStream] = None,
             **profile_overrides) -> JobSpec:
    """Uniform factory: a JobSpec for ``kind`` with ``input_gb`` of data.

    ``id_stream`` scopes the auto-assigned id to the caller's executor
    instead of the process-wide fallback stream.
    """
    _import_all_profiles()
    factory = _REGISTRY.get(kind)
    if factory is None:
        raise ValueError(f"unknown job kind {kind!r}; known: {sorted(_REGISTRY)}")
    profile = factory(**profile_overrides)
    input_bytes = input_gb * 1024 * MB
    if not job_id and id_stream is not None:
        job_id = id_stream.allocate(kind)
    return JobSpec(profile=profile, input_bytes=input_bytes,
                   num_reducers=num_reducers, queue=queue, job_id=job_id)


def _import_all_profiles() -> None:
    # Import for registration side effects; cheap after the first call.
    from repro.jobs import bayes, dfsio, grep, join, kmeans, nutchindexing, pagerank, sort, teragen, terasort, wordcount  # noqa: F401
