"""K-Means: iterative clustering that re-reads its input every round.

Maps scan the full point set each iteration and emit only per-cluster
partial sums (a few KB), so the job is HDFS-read dominated with a
near-zero shuffle repeated ``iterations`` times — the opposite corner
of the traffic space from TeraSort.  The tiny centroid file written per
round is the next round's *model*, while the point set is re-read
(``reread_input=True``).
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("kmeans")
def profile(iterations: int = 3, **overrides) -> JobProfile:
    defaults = dict(
        kind="kmeans",
        map_selectivity=0.001,   # partial centroid sums only
        reduce_selectivity=1.0,
        map_cpu_rate=60.0 * MB,  # distance computation is CPU-bound
        reduce_cpu_rate=80.0 * MB,
        iterations=iterations,
        reread_input=True,
        partition_skew=0.0,      # one key per centroid, near-uniform
        map_jitter_sigma=0.1,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
