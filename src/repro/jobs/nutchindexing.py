"""Nutch indexing (HiBench's ``nutchindexing``): write-heavy search indexing.

Maps parse crawled pages and emit indexing records of comparable size
to the input; reducers build inverted-index segments whose on-disk form
is larger than the shuffled records (posting lists plus structural
overhead).  The job therefore stresses the shuffle *and* the HDFS-write
pipeline at once — the corner none of the other profiles covers.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("nutchindexing")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="nutchindexing",
        map_selectivity=0.8,      # parsed records travel to reducers
        reduce_selectivity=1.3,   # index segments inflate on disk
        map_cpu_rate=65.0 * MB,   # HTML parsing
        reduce_cpu_rate=60.0 * MB,
        partition_skew=0.5,
        map_jitter_sigma=0.25,    # page sizes vary wildly
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
