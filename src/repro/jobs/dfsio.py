"""TestDFSIO-style HDFS I/O micro-benchmarks.

``dfsio-write`` is a map-only job where every map writes a file to HDFS
(pure pipeline traffic, like TeraGen but with per-map files);
``dfsio-read`` is a map-only job where every map streams a file back
(pure HDFS-read traffic).  Together they isolate the two HDFS
components that composite jobs mix with the shuffle.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("dfsio-write")
def write_profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="dfsio-write",
        map_selectivity=1.0,
        generated_bytes_per_map=512.0 * MB,
        map_cpu_rate=400.0 * MB,  # the benchmark is I/O bound by design
        output_replication=None,
        map_jitter_sigma=0.05,
        map_only=True,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)


@register_profile("dfsio-read")
def read_profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="dfsio-read",
        map_selectivity=0.0,      # reads are discarded, nothing emitted
        map_cpu_rate=400.0 * MB,
        map_jitter_sigma=0.05,
        map_only=True,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
