"""Join: a reduce-side equi-join of two tables.

Both relations are tagged and shuffled in full (selectivity slightly
above 1 for the tags), and the joined output is roughly the size of
the larger input.  Key popularity follows a mild power law, so some
reducers receive noticeably more than others — the classic join-skew
effect.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("join")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="join",
        map_selectivity=1.05,   # record tags added before the shuffle
        reduce_selectivity=0.9,
        map_cpu_rate=110.0 * MB,
        reduce_cpu_rate=70.0 * MB,
        partition_skew=0.7,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
