"""TeraSort: the canonical shuffle-heavy 1:1:1 benchmark.

Every input byte is shuffled and every shuffled byte is written back;
following the TeraSort convention the output is *unreplicated*
(``mapreduce.terasort.output.replication=1``), so the job's traffic is
dominated by the shuffle.
"""

from __future__ import annotations

from repro.cluster.units import MB
from repro.jobs.base import JobProfile, register_profile


@register_profile("terasort")
def profile(**overrides) -> JobProfile:
    defaults = dict(
        kind="terasort",
        map_selectivity=1.0,
        reduce_selectivity=1.0,
        map_cpu_rate=120.0 * MB,
        reduce_cpu_rate=90.0 * MB,
        output_replication=1,
        partition_skew=0.2,  # sampled range partitioner is nearly uniform
    )
    defaults.update(overrides)
    return JobProfile(**defaults)
