"""The Flow object exchanged between the network and its users."""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.topology import Host
from repro.simkit.core import Signal

_flow_ids = itertools.count(1)


class Flow:
    """A single data transfer between two hosts.

    Users obtain flows from :meth:`repro.net.network.FlowNetwork.
    start_flow` and wait on :attr:`done` (a :class:`~repro.simkit.core.
    Signal` fired with the flow itself).  The ``metadata`` dict carries
    application labels (job id, traffic component, task ids) used by the
    capture stage; the network itself never interprets it.
    """

    __slots__ = ("flow_id", "src", "dst", "size", "metadata", "max_rate", "done",
                 "path", "links", "start_time", "end_time", "rate", "remaining",
                 "last_update", "local", "span_parent")

    def __init__(self, src: Host, dst: Host, size: float, done: Signal,
                 max_rate: Optional[float] = None,
                 metadata: Optional[Dict[str, Any]] = None,
                 flow_id: Optional[int] = None):
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        # FlowNetwork passes per-network ids so simulations are
        # reproducible regardless of process history; the global
        # counter only backs direct constructions.
        self.flow_id = next(_flow_ids) if flow_id is None else flow_id
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.metadata: Dict[str, Any] = metadata or {}
        self.max_rate = max_rate
        self.done = done
        self.path: List[object] = []
        self.links: List[Tuple[object, object]] = []
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None
        self.rate: float = 0.0
        self.remaining: float = float(size)
        self.last_update: float = 0.0
        self.local: bool = src == dst
        # Telemetry: the lifecycle span this flow nests under (if any).
        self.span_parent = None

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        """Flow completion time in seconds (``None`` while active)."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> Optional[float]:
        """Average throughput in bytes/s over the flow's lifetime."""
        duration = self.duration
        if duration is None:
            return None
        if duration <= 0:
            return float("inf") if self.size > 0 else 0.0
        return self.size / duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"done@{self.end_time:.3f}" if self.finished else f"rate={self.rate:.0f}B/s"
        return (f"Flow(#{self.flow_id} {self.src}->{self.dst} "
                f"{self.size:.0f}B {state})")
