"""The Flow object exchanged between the network and its users."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cluster.topology import Host
from repro.simkit.core import Signal, Simulator


def flow_id_stream() -> Iterator[int]:
    """A fresh flow-id stream (1, 2, ...) for one backend instance.

    Every transport backend owns its own stream, so the ids — which
    appear verbatim in capture bytes — depend only on the simulation,
    never on how many flows earlier clusters in the same process
    created.  Tests that construct Flows directly should draw ids from
    their own stream too; there is deliberately no module-level
    fallback counter.
    """
    return itertools.count(1)


class Flow:
    """A single data transfer between two hosts.

    Users obtain flows from :meth:`repro.net.backend.TransportBackend.
    start_flow` / :meth:`~repro.net.backend.TransportBackend.
    start_flows` and wait on :attr:`done` (a :class:`~repro.simkit.core.
    Signal` fired with the flow itself).  The ``metadata`` dict carries
    application labels (job id, traffic component, task ids) used by the
    capture stage; the network itself never interprets it.

    ``done`` is allocated lazily: fire-and-forget producers (heartbeats,
    control-plane RPCs, re-replication) never read the attribute, so
    they pay no Signal cost at all.  Reading ``done`` after the flow
    completed yields an already-fired signal (late waiters resume
    immediately, exactly as with an eager signal); reading it on a
    cancelled flow yields a signal that never fires, preserving the
    cancellation contract.
    """

    __slots__ = ("flow_id", "src", "dst", "size", "metadata", "max_rate", "sim",
                 "_done", "path", "links", "start_time", "end_time", "rate",
                 "remaining", "last_update", "local", "span_parent")

    def __init__(self, src: Host, dst: Host, size: float, sim: Simulator,
                 max_rate: Optional[float] = None,
                 metadata: Optional[Dict[str, Any]] = None, *,
                 flow_id: int):
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.metadata: Dict[str, Any] = metadata or {}
        self.max_rate = max_rate
        self.sim = sim
        self._done: Optional[Signal] = None
        self.path: List[object] = []
        self.links: List[Tuple[object, object]] = []
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None
        self.rate: float = 0.0
        self.remaining: float = float(size)
        self.last_update: float = 0.0
        self.local: bool = src == dst
        # Telemetry: the lifecycle span this flow nests under (if any).
        self.span_parent = None

    @property
    def done(self) -> Signal:
        """The completion signal, materialised on first access.

        Firing a signal with no waiters schedules nothing, so lazy
        allocation is observationally invisible: the event sequence of
        a run is identical whether or not anybody ever waits.
        """
        signal = self._done
        if signal is None:
            signal = Signal(self.sim, name="flow.done")
            self._done = signal
            self.sim.telemetry.registry.counter("net.done_signals").value += 1
            if self.end_time is not None:
                # Completed before anyone waited: pre-fire so late
                # waiters resume immediately, matching eager semantics.
                signal.fire(self)
        return signal

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        """Flow completion time in seconds (``None`` while active)."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> Optional[float]:
        """Average throughput in bytes/s over the flow's lifetime."""
        duration = self.duration
        if duration is None:
            return None
        if duration <= 0:
            return float("inf") if self.size > 0 else 0.0
        return self.size / duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"done@{self.end_time:.3f}" if self.finished else f"rate={self.rate:.0f}B/s"
        return (f"Flow(#{self.flow_id} {self.src}->{self.dst} "
                f"{self.size:.0f}B {state})")
