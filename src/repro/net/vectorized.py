"""The numpy-vectorized fluid engine: dense water-filling and flow state.

Selected with ``engine="vectorized"`` (``ClusterSpec.engine``, CLI
``--engine``), this module re-expresses the fluid engine's two hot
loops as array programs:

* :class:`VectorizedFairShareAllocator` — the max-min water-filling
  allocator over dense numpy state.  Links are interned to integer ids
  exactly like the scalar :class:`~repro.net.fairshare.
  FairShareAllocator`; flows live in recycled *slots* (grow-on-demand
  arrays plus a free list, so add/remove churn never reallocates).

  Array layout::

      _link_caps : float64[L]        capacity per link id
      _inc       : intp[S, P]        per-slot link incidence, storing
                                     ``link_id + 1`` so 0 is the
                                     permanent padding value (short
                                     paths and retired slots are 0)
      _caps      : float64[S]        per-slot rate cap (inf = uncapped
                                     or retired)
      _rates     : float64[S]        the allocation (engine output)
      _n_base    : int64[L + 1]      unfrozen members per link, bin 0
                                     collecting the padding

  A recompute runs *bottleneck rounds*: per round compute every loaded
  link's fair share ``residual / count``, gather each slot's attainable
  level (min of its links' shares and its cap, via one ``take`` over a
  share vector whose slot 0 is ``inf``), take the global min ``B``,
  freeze every slot with ``level <= B * (1 + eps)`` in one masked
  update, and shed the frozen group from the links with a ``bincount``.

  The round arithmetic — one float64 divide per link, one min, the
  threshold product, and ``max(residual - rate * shed, 0)`` — is the
  *same IEEE-754 sequence* the scalar allocator performs since its
  round-grouped refactor, so the two engines produce bit-identical
  rates, not merely close ones.  That is what makes captures
  byte-identical across engines (the differential suite pins both the
  1e-6 contract and, end to end, the byte equality).

* :class:`VectorizedFlowState` — the :class:`~repro.net.network.
  FlowNetwork` side: per-slot remaining bytes, activation sequence
  numbers and per-link delivered-byte accumulators, so progress
  advancement, completion harvesting and the completion-horizon min are
  single array expressions instead of per-flow python loops.  Flow
  objects are only touched at activation and completion; completions
  are reported in activation order, matching the scalar engine's
  insertion-ordered harvest exactly.

When to prefer the scalar engine: small clusters.  Below a few hundred
concurrent flows the numpy per-call overhead exceeds the dict/heap
work it replaces (the crossover is measured in
``benchmarks/bench_vectorized.py``); at campaign scale — thousands of
concurrent flows, 256..1024-node fabrics, million-flow runs — the
vectorized engine is the only one that finishes in reasonable time.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.net.fairshare import _EPS


class VectorizedFairShareAllocator:
    """Stateful max-min allocator over dense numpy arrays.

    Drop-in for :class:`~repro.net.fairshare.FairShareAllocator`: same
    ``set_capacity`` / ``add_flow`` / ``remove_flow`` / ``rates``
    interface, same validation errors, same counters — plus the
    array-level entry points (:meth:`recompute`, :attr:`rate_array`)
    the vectorized :class:`~repro.net.network.FlowNetwork` drives to
    avoid per-flow dict traffic entirely.
    """

    def __init__(self, capacities: Optional[Mapping[Hashable, float]] = None):
        # Links: interned to dense ids; stored in the incidence matrix
        # as id + 1 so 0 can stay the permanent padding value.
        self._link_ids: Dict[Hashable, int] = {}
        self._link_keys: List[Hashable] = []
        self._link_caps = np.zeros(8, dtype=np.float64)
        self._n_base = np.zeros(9, dtype=np.int64)   # members per id+1; bin 0 = pad
        # Flows: slot-addressed with free-list recycling.
        self._slot_of: Dict[Hashable, int] = {}
        self._key_of: List[Optional[Hashable]] = []
        self._free: List[int] = []
        self._hi = 0                                  # high-water slot count
        self._inc = np.zeros((8, 4), dtype=np.intp)
        self._caps = np.full(8, np.inf, dtype=np.float64)
        self._rates = np.zeros(8, dtype=np.float64)
        self._routed_mask = np.zeros(8, dtype=bool)
        self._routed = 0
        self.recomputes = 0
        self.rounds = 0
        self.allocator_seconds = 0.0
        if capacities:
            for link, capacity in capacities.items():
                self.set_capacity(link, capacity)

    # -- mirror of the scalar interface ---------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, flow: Hashable) -> bool:
        return flow in self._slot_of

    def has_link(self, link: Hashable) -> bool:
        return link in self._link_ids

    @property
    def num_links(self) -> int:
        return len(self._link_keys)

    def link_key(self, link_id: int) -> Hashable:
        return self._link_keys[link_id]

    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register a link (or update its capacity), in bytes/s."""
        if capacity <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
        link_id = self._link_ids.get(link)
        if link_id is None:
            link_id = len(self._link_keys)
            if link_id == self._link_caps.shape[0]:
                grown = np.zeros(link_id * 2, dtype=np.float64)
                grown[:link_id] = self._link_caps
                self._link_caps = grown
                counts = np.zeros(link_id * 2 + 1, dtype=np.int64)
                counts[:self._n_base.shape[0]] = self._n_base
                self._n_base = counts
            self._link_ids[link] = link_id
            self._link_keys.append(link)
        self._link_caps[link_id] = float(capacity)

    def _new_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._hi
        if slot == self._inc.shape[0]:
            cap = slot * 2
            inc = np.zeros((cap, self._inc.shape[1]), dtype=np.intp)
            inc[:slot] = self._inc
            self._inc = inc
            for name in ("_caps", "_rates"):
                old = getattr(self, name)
                grown = np.full(cap, np.inf if name == "_caps" else 0.0,
                                dtype=np.float64)
                grown[:slot] = old
                setattr(self, name, grown)
            mask = np.zeros(cap, dtype=bool)
            mask[:slot] = self._routed_mask
            self._routed_mask = mask
            self._grow_hook(cap)
        self._key_of.append(None)
        self._hi += 1
        return slot

    def _grow_hook(self, slot_capacity: int) -> None:
        """Overridden observation point: slot storage was reallocated."""

    def add_flow(self, flow: Hashable, links: Iterable[Hashable],
                 cap: Optional[float] = None) -> int:
        """Add an active flow crossing ``links``; returns its slot."""
        if flow in self._slot_of:
            raise ValueError(f"flow {flow!r} is already active")
        if cap is not None and cap <= 0:
            raise ValueError(f"flow {flow!r} has non-positive cap {cap}")
        link_ids = self._link_ids
        try:
            ids = [link_ids[link] for link in links]
        except KeyError as missing:
            raise KeyError(
                f"unknown link {missing.args[0]!r}; call set_capacity first") from None
        if len(ids) > self._inc.shape[1]:
            widened = np.zeros((self._inc.shape[0], max(len(ids), 2 * self._inc.shape[1])),
                               dtype=np.intp)
            widened[:, :self._inc.shape[1]] = self._inc
            self._inc = widened
        slot = self._new_slot()
        row = self._inc[slot]
        n_base = self._n_base
        for hop, link_id in enumerate(ids):
            row[hop] = link_id + 1
            n_base[link_id + 1] += 1
        if ids:
            self._caps[slot] = float(cap) if cap is not None else np.inf
            self._rates[slot] = 0.0
            self._routed_mask[slot] = True
            self._routed += 1
        else:
            # Linkless (host-local) flow: its rate is fixed at its cap
            # right here, and the slot stays out of the water-filling
            # (cap inf + zero incidence row = level inf, never frozen).
            self._rates[slot] = float(cap) if cap is not None else np.inf
            self._routed_mask[slot] = False
        self._slot_of[flow] = slot
        self._key_of[slot] = flow
        return slot

    def add_flows(self, entries: Sequence[Tuple[Hashable, Sequence[Hashable],
                                                Optional[float]]]) -> List[int]:
        """Bulk :meth:`add_flow` for one admission wave; returns the slots.

        One array grow (doubling from the current capacity, so the
        resulting capacity matches what repeated per-flow growth would
        have produced), one incidence scatter and one ``bincount``
        member update replace N per-flow calls.  Slot assignment order
        is identical to sequential adds — free-list pops first, then
        fresh slots in increasing order — so downstream state
        (:class:`VectorizedFlowState` sequence numbers, harvest order)
        cannot tell the difference.
        """
        slot_of = self._slot_of
        link_ids = self._link_ids
        resolved: List[Tuple[Hashable, List[int], Optional[float]]] = []
        max_width = 0
        # Same-wave flows routinely share their ``links`` object (the
        # caller resolves each (src, dst) pair once), so link-key
        # hashing is paid per distinct path, not per flow.  Keyed by
        # id(): the objects are pinned alive by ``entries`` for the
        # duration of the call.
        ids_memo: Dict[int, List[int]] = {}
        for flow, links, cap in entries:
            if flow in slot_of:
                raise ValueError(f"flow {flow!r} is already active")
            if cap is not None and cap <= 0:
                raise ValueError(f"flow {flow!r} has non-positive cap {cap}")
            ids = ids_memo.get(id(links))
            if ids is None:
                try:
                    ids = [link_ids[link] for link in links]
                except KeyError as missing:
                    raise KeyError(f"unknown link {missing.args[0]!r}; "
                                   f"call set_capacity first") from None
                ids_memo[id(links)] = ids
            if len(ids) > max_width:
                max_width = len(ids)
            resolved.append((flow, ids, cap))
        if not resolved:
            return []
        if max_width > self._inc.shape[1]:
            widened = np.zeros(
                (self._inc.shape[0], max(max_width, 2 * self._inc.shape[1])),
                dtype=np.intp)
            widened[:, :self._inc.shape[1]] = self._inc
            self._inc = widened
        free = self._free
        fresh = len(resolved) - len(free)
        capacity = self._inc.shape[0]
        if fresh > 0 and self._hi + fresh > capacity:
            while capacity < self._hi + fresh:
                capacity *= 2
            inc = np.zeros((capacity, self._inc.shape[1]), dtype=np.intp)
            inc[:self._hi] = self._inc[:self._hi]
            self._inc = inc
            for name in ("_caps", "_rates"):
                old = getattr(self, name)
                grown = np.full(capacity, np.inf if name == "_caps" else 0.0,
                                dtype=np.float64)
                grown[:old.shape[0]] = old
                setattr(self, name, grown)
            mask = np.zeros(capacity, dtype=bool)
            mask[:self._routed_mask.shape[0]] = self._routed_mask
            self._routed_mask = mask
            self._grow_hook(capacity)
        key_of = self._key_of
        caps_arr = self._caps
        rates = self._rates
        routed_mask = self._routed_mask
        slots: List[int] = []
        flat_slots: List[int] = []
        flat_hops: List[int] = []
        flat_vals: List[int] = []
        routed_added = 0
        for flow, ids, cap in resolved:
            if free:
                slot = free.pop()
            else:
                slot = self._hi
                key_of.append(None)
                self._hi += 1
            slots.append(slot)
            if ids:
                for hop, link_id in enumerate(ids):
                    flat_slots.append(slot)
                    flat_hops.append(hop)
                    flat_vals.append(link_id + 1)
                caps_arr[slot] = float(cap) if cap is not None else np.inf
                rates[slot] = 0.0
                routed_mask[slot] = True
                routed_added += 1
            else:
                rates[slot] = float(cap) if cap is not None else np.inf
                routed_mask[slot] = False
            slot_of[flow] = slot
            key_of[slot] = flow
        if flat_vals:
            self._inc[flat_slots, flat_hops] = flat_vals
            self._n_base += np.bincount(flat_vals,
                                        minlength=self._n_base.shape[0])
        self._routed += routed_added
        return slots

    def remove_flow(self, flow: Hashable) -> int:
        """Remove a completed (or aborted) flow; returns the freed slot."""
        slot = self._slot_of.pop(flow, None)
        if slot is None:
            raise KeyError(f"flow {flow!r} is not active")
        row = self._inc[slot]
        if self._routed_mask[slot]:
            n_base = self._n_base
            for value in row[row != 0].tolist():
                n_base[value] -= 1
            self._routed -= 1
            self._routed_mask[slot] = False
        row[:] = 0
        self._caps[slot] = np.inf
        self._rates[slot] = 0.0
        self._key_of[slot] = None
        self._free.append(slot)
        return slot

    def remove_flows(self, flows: Sequence[Hashable]) -> None:
        """Bulk :meth:`remove_flow` for one completion wave.

        Member counts for all routed rows drop via a single
        ``bincount`` (bin 0 is the incidence pad and must stay
        untouched); freed slots enter the free-list in iteration
        order, exactly as sequential removals would have pushed them.
        """
        slot_of = self._slot_of
        key_of = self._key_of
        routed_mask = self._routed_mask
        slots: List[int] = []
        routed_slots: List[int] = []
        for flow in flows:
            slot = slot_of.pop(flow, None)
            if slot is None:
                raise KeyError(f"flow {flow!r} is not active")
            slots.append(slot)
            if routed_mask[slot]:
                routed_slots.append(slot)
                routed_mask[slot] = False
            key_of[slot] = None
        if routed_slots:
            counts = np.bincount(self._inc[routed_slots].ravel(),
                                 minlength=self._n_base.shape[0])
            counts[0] = 0
            self._n_base -= counts
            self._inc[routed_slots] = 0
            self._routed -= len(routed_slots)
        index = np.asarray(slots, dtype=np.intp)
        self._caps[index] = np.inf
        self._rates[index] = 0.0
        self._free.extend(slots)

    def slot_of(self, flow: Hashable) -> int:
        return self._slot_of[flow]

    # -- the water-filling kernel ----------------------------------------------

    def recompute(self) -> None:
        """Re-waterfill into :attr:`rate_array` (no dict is built)."""
        import time as _time

        started = _time.perf_counter()
        self._waterfill()
        self.recomputes += 1
        self.allocator_seconds += _time.perf_counter() - started

    def rates(self) -> Dict[Hashable, float]:
        """Max-min fair rates of all active flows (dict interface)."""
        self.recompute()
        rate_of = self._rates
        return {flow: float(rate_of[slot])
                for flow, slot in self._slot_of.items()}

    @property
    def rate_array(self) -> np.ndarray:
        """Per-slot allocated rates, valid up to the slot high-water mark."""
        return self._rates

    def _waterfill(self) -> None:
        if not self._routed:
            return
        hi = self._hi
        num_links = len(self._link_keys)
        residual = self._link_caps[:num_links].copy()
        countf = self._n_base[1:num_links + 1].astype(np.float64)
        rates = self._rates
        share_ext = np.empty(num_links + 1, dtype=np.float64)
        # Compact working set: only unfrozen routed slots take part in
        # a round.  Frozen rows read as level=inf (cap inf, incidence
        # row 0) and can never win the min nor re-freeze, so they are
        # inert whether dropped or kept — dropping or retiring them in
        # place changes nothing bitwise.  The incidence is transposed
        # to (path-width, flows): the per-flow level then composes from
        # column-contiguous gathers and *binary* np.minimum calls,
        # which SIMD-vectorize, instead of one min-reduce along axis 1,
        # which does not (min is exact, so the order change is free).
        alive = np.flatnonzero(self._routed_mask[:hi])
        inc_t = np.ascontiguousarray(self._inc[alive].T)
        caps_alive = self._caps[alive]
        buf = np.empty(alive.size, dtype=np.float64)
        unfrozen = alive.size
        rounds = 0
        while unfrozen:
            rounds += 1
            # Fair share of every loaded link; unloaded links and the
            # padding slot 0 read as inf so they never win the min.
            share_ext.fill(np.inf)
            loaded = countf > 0.0
            np.divide(residual, countf, out=share_ext[1:], where=loaded)
            level = share_ext.take(inc_t[0])
            for column in range(1, inc_t.shape[0]):
                np.minimum(level, share_ext.take(inc_t[column], out=buf),
                           out=level)
            np.minimum(level, caps_alive, out=level)
            bottleneck = float(level.min())
            if bottleneck == float("inf"):
                raise RuntimeError(
                    "water-filling stalled with unfrozen flows (allocator bug)")
            # Identical round arithmetic to the scalar engine: same
            # threshold product, same group rate, same bulk shed.
            rate = bottleneck if bottleneck > 0.0 else 0.0
            threshold = bottleneck * (1.0 + _EPS)
            frozen = level <= threshold
            newly = np.flatnonzero(frozen)
            shed = np.bincount(inc_t[:, newly].ravel(),
                               minlength=num_links + 1)[1:]
            countf -= shed
            np.maximum(residual - rate * shed, 0.0, out=residual)
            rates[alive[newly]] = rate
            unfrozen -= int(newly.size)
            if not unfrozen:
                break
            if newly.size * 4 >= level.size:
                # A big freeze: compacting pays for itself.  Finite
                # level > threshold keeps exactly the unfrozen rows
                # (rows retired in earlier rounds sit at level=inf).
                keep = np.isfinite(level) & ~frozen
                alive = alive[keep]
                inc_t = np.ascontiguousarray(inc_t[:, keep])
                caps_alive = caps_alive[keep]
                buf = np.empty(alive.size, dtype=np.float64)
            else:
                # A small freeze: retire the columns in place (scatter
                # O(newly)) rather than copying three arrays O(alive).
                caps_alive[newly] = np.inf
                inc_t[:, newly] = 0
        self.rounds += rounds


class VectorizedFlowState:
    """Array twin of ``FlowNetwork``'s per-flow progress bookkeeping.

    Piggybacks on the allocator's slot lifecycle: the slot a flow gets
    from :meth:`VectorizedFairShareAllocator.add_flow` indexes this
    class's ``remaining`` / ``seq`` arrays and its Flow back-reference
    list.  Delivered bytes accumulate *per slot* during advances (one
    cheap array add) and are folded into the per-link id-indexed
    accumulator only when a flow retires — and, for still-active
    flows, when somebody actually reads ``link_bytes`` — so the hot
    advance path never touches the slot x path-width matrix.
    """

    def __init__(self, allocator: VectorizedFairShareAllocator):
        self.allocator = allocator
        allocator._grow_hook = self._grow
        self._remaining = np.zeros(allocator._inc.shape[0], dtype=np.float64)
        self._seq = np.zeros(allocator._inc.shape[0], dtype=np.int64)
        self._flows: List[Optional[object]] = []
        self._delivered = np.zeros(allocator._inc.shape[0], dtype=np.float64)
        self._link_acc = np.zeros(allocator._n_base.shape[0], dtype=np.float64)
        self._next_seq = 0
        self.links_dirty = False

    def _grow(self, slot_capacity: int) -> None:
        remaining = np.zeros(slot_capacity, dtype=np.float64)
        remaining[:self._remaining.shape[0]] = self._remaining
        self._remaining = remaining
        seq = np.zeros(slot_capacity, dtype=np.int64)
        seq[:self._seq.shape[0]] = self._seq
        self._seq = seq
        delivered = np.zeros(slot_capacity, dtype=np.float64)
        delivered[:self._delivered.shape[0]] = self._delivered
        self._delivered = delivered

    # -- lifecycle -------------------------------------------------------------

    def add(self, flow) -> int:
        slot = self.allocator.add_flow(flow.flow_id, flow.links, flow.max_rate)
        if slot == len(self._flows):
            self._flows.append(flow)
        else:
            self._flows[slot] = flow
        self._remaining[slot] = flow.remaining
        self._delivered[slot] = 0.0
        self._seq[slot] = self._next_seq
        self._next_seq += 1
        return slot

    def remove(self, flow) -> None:
        slot = self.allocator.slot_of(flow.flow_id)
        flow.remaining = float(self._remaining[slot])
        self._remaining[slot] = np.inf
        self._flows[slot] = None
        # Fold this flow's delivered bytes into the per-link
        # accumulator before the allocator zeroes its incidence row.
        # The row is tiny (path width), so a python loop beats any
        # array call here.
        delivered = float(self._delivered[slot])
        if delivered:
            acc = self._grown_acc()
            for link_id in self.allocator._inc[slot].tolist():
                if link_id:
                    acc[link_id] += delivered
            self._delivered[slot] = 0.0
            self.links_dirty = True
        self.allocator.remove_flow(flow.flow_id)

    def add_batch(self, flows: Sequence[object]) -> List[int]:
        """Bulk :meth:`add` for one admission wave.

        The allocator hands back slots in the same order sequential
        adds would, so the sequence numbers assigned here (one
        ``arange``) are indistinguishable from per-flow admission.
        """
        slots = self.allocator.add_flows(
            [(flow.flow_id, flow.links, flow.max_rate) for flow in flows])
        flow_list = self._flows
        for flow, slot in zip(flows, slots):
            if slot == len(flow_list):
                flow_list.append(flow)
            else:
                flow_list[slot] = flow
        index = np.asarray(slots, dtype=np.intp)
        self._remaining[index] = [flow.remaining for flow in flows]
        self._delivered[index] = 0.0
        self._seq[index] = np.arange(self._next_seq,
                                     self._next_seq + len(flows),
                                     dtype=np.int64)
        self._next_seq += len(flows)
        return slots

    def remove_batch(self, flows: Sequence[object]) -> None:
        """Bulk :meth:`remove` for one completion wave.

        The delivered-bytes fold stays a per-flow python loop in wave
        order: float addition is not associative, so regrouping the
        per-link sums would perturb ``link_bytes`` bitwise.  Only the
        allocator teardown (incidence clear, member counts, free-list)
        is batched.
        """
        allocator = self.allocator
        slot_of = allocator._slot_of
        remaining = self._remaining
        delivered_arr = self._delivered
        flow_list = self._flows
        inc = allocator._inc
        for flow in flows:
            slot = slot_of[flow.flow_id]
            flow.remaining = float(remaining[slot])
            remaining[slot] = np.inf
            flow_list[slot] = None
            delivered = float(delivered_arr[slot])
            if delivered:
                acc = self._grown_acc()
                for link_id in inc[slot].tolist():
                    if link_id:
                        acc[link_id] += delivered
                delivered_arr[slot] = 0.0
                self.links_dirty = True
        allocator.remove_flows([flow.flow_id for flow in flows])

    def _grown_acc(self) -> np.ndarray:
        """The per-link accumulator, grown to match the link universe."""
        acc = self._link_acc
        if acc.shape[0] < self.allocator._n_base.shape[0]:
            grown = np.zeros(self.allocator._n_base.shape[0], dtype=np.float64)
            grown[:acc.shape[0]] = acc
            self._link_acc = acc = grown
        return acc

    # -- the vectorized fluid steps --------------------------------------------

    def advance(self, elapsed: float) -> None:
        """Bank ``rate × elapsed`` progress for every active slot.

        Identical per-slot arithmetic to the scalar loop
        (``moved = min(rate * elapsed, remaining)``); retired slots have
        rate 0 so they move nothing.
        """
        allocator = self.allocator
        hi = allocator._hi
        if not hi:
            return
        rates = allocator._rates[:hi]
        remaining = self._remaining[:hi]
        moved = rates * elapsed
        np.minimum(moved, remaining, out=moved)
        remaining -= moved
        self._delivered[:hi] += moved
        self.links_dirty = True

    def horizon(self) -> float:
        """Earliest projected completion over active slots, in seconds."""
        allocator = self.allocator
        hi = allocator._hi
        rates = allocator._rates[:hi]
        quotient = np.full(hi, np.inf, dtype=np.float64)
        np.divide(self._remaining[:hi], rates, out=quotient, where=rates > 0.0)
        return float(quotient.min())

    def finished(self, eps_bytes: float) -> List[object]:
        """Active flows whose remaining bytes dropped to ~0, oldest first."""
        allocator = self.allocator
        hi = allocator._hi
        done = allocator._routed_mask[:hi] & (self._remaining[:hi] <= eps_bytes)
        slots = np.flatnonzero(done)
        if not slots.size:
            return []
        slots = slots[np.argsort(self._seq[slots])]
        flows = self._flows
        return [flows[slot] for slot in slots.tolist()]

    def throughput_bytes(self) -> float:
        """Aggregate instantaneous rate over active slots, bytes/s."""
        allocator = self.allocator
        return float(allocator._rates[:allocator._hi].sum())

    def export_link_bytes(self, out: Dict) -> None:
        """Materialise the per-link byte accumulators into ``out``.

        Retired flows were folded at removal; still-active slots are
        folded here on the fly (one bincount), leaving the persistent
        accumulator untouched so the export stays idempotent.
        """
        allocator = self.allocator
        acc = self._grown_acc()
        hi = allocator._hi
        totals = acc.copy()
        if hi:
            inc = allocator._inc[:hi]
            live = np.bincount(inc.ravel(),
                               weights=np.repeat(self._delivered[:hi],
                                                 inc.shape[1]),
                               minlength=totals.shape[0])
            totals += live
        for link_id, key in enumerate(allocator._link_keys):
            value = totals[link_id + 1]
            if value != 0.0:
                out[key] = value
        self.links_dirty = False
