"""Analytic TCP flow-completion-time estimates.

The fluid max-min replay models *sharing* but not TCP's per-flow
dynamics (handshake, slow start).  This module provides the standard
closed-form FCT estimate for an uncontended TCP flow — essentially the
Cardwell/Savage/Anderson latency model with no loss — used to sanity-
check the fluid model's durations and to quantify where the fluid
approximation is valid (bulk flows) versus optimistic (small flows).

``tcp_fct(size, rtt, bandwidth)`` =
    handshake (1 RTT)
  + slow-start rounds until the window reaches the BDP
  + remaining bytes at line rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

DEFAULT_MSS = 1448
DEFAULT_INITIAL_WINDOW = 10  # segments (RFC 6928)


def slow_start_rounds(size_bytes: float, rtt: float, bandwidth: float,
                      mss: int = DEFAULT_MSS,
                      initial_window: int = DEFAULT_INITIAL_WINDOW) -> int:
    """Number of RTT-bound slow-start rounds before rate-bound transfer.

    Slow start doubles the window each RTT until either the data runs
    out or the window covers the bandwidth-delay product.
    """
    if size_bytes <= 0:
        return 0
    bdp_segments = max(bandwidth * rtt / mss, 1.0)
    segments_left = math.ceil(size_bytes / mss)
    window = float(initial_window)
    rounds = 0
    while segments_left > 0 and window < bdp_segments:
        sent = min(window, segments_left)
        segments_left -= sent
        window *= 2
        rounds += 1
    return rounds


def tcp_fct(size_bytes: float, rtt: float, bandwidth: float,
            mss: int = DEFAULT_MSS,
            initial_window: int = DEFAULT_INITIAL_WINDOW) -> float:
    """Uncontended TCP flow completion time in seconds.

    ``bandwidth`` is the path's bottleneck rate in bytes/s; ``rtt`` the
    round-trip time in seconds.  Loss-free model: handshake + slow-start
    rounds + the bytes not covered during slow start at line rate.
    """
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0, got {size_bytes}")
    if rtt < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt}")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if size_bytes == 0:
        return rtt  # handshake only
    rounds = slow_start_rounds(size_bytes, rtt, bandwidth, mss, initial_window)
    # Bytes moved during the RTT-bound phase.
    window = float(initial_window)
    covered = 0.0
    for _ in range(rounds):
        covered += window * mss
        window *= 2
    covered = min(covered, size_bytes)
    remainder = size_bytes - covered
    return rtt + rounds * rtt + remainder / bandwidth


@dataclass(frozen=True)
class FctComparison:
    """Fluid vs analytic duration for one flow."""

    size: float
    fluid: float
    analytic: float

    @property
    def ratio(self) -> float:
        """fluid / analytic (< 1 where the fluid model is optimistic)."""
        if self.analytic <= 0:
            return float("nan")
        return self.fluid / self.analytic


def compare_to_fluid(sizes: Sequence[float], fluid_durations: Sequence[float],
                     rtt: float, bandwidth: float) -> List[FctComparison]:
    """Pair fluid-simulated durations with the analytic TCP estimate."""
    if len(sizes) != len(fluid_durations):
        raise ValueError("sizes and durations must align")
    return [FctComparison(size=size, fluid=fluid,
                          analytic=tcp_fct(size, rtt, bandwidth))
            for size, fluid in zip(sizes, fluid_durations)]
