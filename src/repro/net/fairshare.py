"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each with a list of links (directed edges with a
capacity) and an optional per-flow rate cap, compute the unique max-min
fair allocation: all rates rise together until a constraint binds; the
flows bound by it freeze; repeat on the residual network.

Rate caps model end-host limits such as disk read/write throughput or
application-level throttling (Hadoop's
``shuffle.parallelcopies`` is modelled structurally instead, by capping
concurrent fetches).

Two implementations live here:

* :func:`max_min_rates` — the textbook O(rounds × F × L) reference.
  Every call rebuilds link membership from scratch and scans all
  unfrozen flows per round.  It is kept as the correctness oracle for
  the differential property tests.
* :class:`FairShareAllocator` — the engine's hot-path allocator.  Link
  membership, per-flow link lists and rate caps persist across
  recomputes (``add_flow`` / ``remove_flow`` deltas), links are interned
  to dense integer ids (so the inner loop never hashes topology-node
  tuples), and the water-filling inner loop replaces the per-round
  ``min()`` scans with a lazy heap of link fair shares plus a heap of
  flow caps — O((F + L) log L) per recompute.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

_EPS = 1e-9


def max_min_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        Maps each flow key to the links it traverses.  A flow with no
        links (host-local transfer) is only limited by its cap, or gets
        ``inf`` if uncapped.
    capacities:
        Capacity of every link appearing in ``flow_links``, in bytes/s.
    caps:
        Optional per-flow maximum rate.

    Returns
    -------
    dict mapping every flow key to its allocated rate in bytes/s.
    """
    caps = caps or {}
    rates: Dict[Hashable, float] = {}
    # Residual capacity and the unfrozen flows crossing each link.
    residual: Dict[Hashable, float] = {}
    link_members: Dict[Hashable, set] = {}
    unfrozen: Dict[Hashable, List[Hashable]] = {}

    for flow, links in flow_links.items():
        links = list(links)
        if not links:
            rates[flow] = caps.get(flow, float("inf"))
            continue
        unfrozen[flow] = links
        for link in links:
            if link not in residual:
                capacity = capacities[link]
                if capacity <= 0:
                    raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
                residual[link] = capacity
                link_members[link] = set()
            link_members[link].add(flow)

    while unfrozen:
        # Fair share currently offered by each loaded link.
        fair: Dict[Hashable, float] = {
            link: residual[link] / len(members)
            for link, members in link_members.items() if members
        }
        # Each flow's attainable level this round.
        level: Dict[Hashable, float] = {}
        for flow, links in unfrozen.items():
            share = min(fair[link] for link in links)
            cap = caps.get(flow)
            if cap is not None:
                share = min(share, cap)
            level[flow] = share
        bottleneck = min(level.values())
        frozen = [flow for flow, value in level.items() if value <= bottleneck * (1 + _EPS)]
        for flow in frozen:
            rate = max(bottleneck, 0.0)
            rates[flow] = rate
            for link in unfrozen[flow]:
                residual[link] = max(residual[link] - rate, 0.0)
                link_members[link].discard(flow)
            del unfrozen[flow]
    return rates


class FairShareAllocator:
    """Stateful max-min allocator: persistent membership, heap inner loop.

    The allocator mirrors the active flow set of a
    :class:`~repro.net.network.FlowNetwork`: links are registered once
    with :meth:`set_capacity`, flows are added and removed as they
    arrive and complete, and :meth:`rates` computes the max-min fair
    allocation of whatever is currently active.  Rates agree with
    :func:`max_min_rates` to within floating-point noise (the
    differential tests pin this at 1e-6 relative).

    Freezing order: when the binding constraint is a flow cap it is
    applied before an equal link fair share, matching the reference's
    single-round grouping of ties.
    """

    __slots__ = ("_link_ids", "_link_caps", "_members", "_flow_links",
                 "_flow_caps", "recomputes", "allocator_seconds")

    def __init__(self, capacities: Optional[Mapping[Hashable, float]] = None):
        self._link_ids: Dict[Hashable, int] = {}   # external link key -> dense id
        self._link_caps: List[float] = []          # id -> capacity, bytes/s
        self._members: List[Set[Hashable]] = []    # id -> flows crossing the link
        self._flow_links: Dict[Hashable, List[int]] = {}
        self._flow_caps: Dict[Hashable, float] = {}
        self.recomputes = 0
        self.allocator_seconds = 0.0
        if capacities:
            for link, capacity in capacities.items():
                self.set_capacity(link, capacity)

    def __len__(self) -> int:
        return len(self._flow_links)

    def __contains__(self, flow: Hashable) -> bool:
        return flow in self._flow_links

    def has_link(self, link: Hashable) -> bool:
        return link in self._link_ids

    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register a link (or update its capacity), in bytes/s."""
        if capacity <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
        link_id = self._link_ids.get(link)
        if link_id is None:
            self._link_ids[link] = len(self._link_caps)
            self._link_caps.append(float(capacity))
            self._members.append(set())
        else:
            self._link_caps[link_id] = float(capacity)

    def add_flow(self, flow: Hashable, links: Iterable[Hashable],
                 cap: Optional[float] = None) -> None:
        """Add an active flow crossing ``links``, optionally rate-capped."""
        if flow in self._flow_links:
            raise ValueError(f"flow {flow!r} is already active")
        if cap is not None and cap <= 0:
            raise ValueError(f"flow {flow!r} has non-positive cap {cap}")
        link_ids = self._link_ids
        try:
            ids = [link_ids[link] for link in links]
        except KeyError as missing:
            raise KeyError(
                f"unknown link {missing.args[0]!r}; call set_capacity first") from None
        self._flow_links[flow] = ids
        for link_id in ids:
            self._members[link_id].add(flow)
        if cap is not None:
            self._flow_caps[flow] = float(cap)

    def remove_flow(self, flow: Hashable) -> None:
        """Remove a completed (or aborted) flow."""
        ids = self._flow_links.pop(flow, None)
        if ids is None:
            raise KeyError(f"flow {flow!r} is not active")
        for link_id in ids:
            self._members[link_id].discard(flow)
        self._flow_caps.pop(flow, None)

    def rates(self) -> Dict[Hashable, float]:
        """Max-min fair rates of all active flows (see :func:`max_min_rates`)."""
        started = _time.perf_counter()
        result = self._compute()
        self.recomputes += 1
        self.allocator_seconds += _time.perf_counter() - started
        return result

    def _compute(self) -> Dict[Hashable, float]:
        flow_caps = self._flow_caps
        members = self._members
        link_caps = self._link_caps
        rates: Dict[Hashable, float] = {}
        remaining = 0
        for flow, ids in self._flow_links.items():
            if ids:
                remaining += 1
            else:
                rates[flow] = flow_caps.get(flow, float("inf"))
        if not remaining:
            return rates

        # Per-recompute working state: residual capacity and unfrozen
        # member count per loaded link.  The member *sets* are never
        # copied — frozen flows are tracked in one set instead.
        count: Dict[int, int] = {}
        residual: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = []
        for link_id, flows_on in enumerate(members):
            loaded = len(flows_on)
            if loaded:
                count[link_id] = loaded
                residual[link_id] = link_caps[link_id]
                heap.append((link_caps[link_id] / loaded, link_id))
        heapq.heapify(heap)
        cap_heap: List[Tuple[float, Hashable]] = [
            (cap, flow) for flow, cap in flow_caps.items()
            if self._flow_links.get(flow)]
        heapq.heapify(cap_heap)
        frozen: Set[Hashable] = set()

        def freeze(flow: Hashable, rate: float) -> None:
            rates[flow] = rate
            frozen.add(flow)
            for link_id in self._flow_links[flow]:
                left = count[link_id] - 1
                count[link_id] = left
                spare = residual[link_id] - rate
                residual[link_id] = spare if spare > 0.0 else 0.0
                if left > 0:
                    heapq.heappush(heap, (residual[link_id] / left, link_id))

        while remaining:
            # The valid heap minimum: an entry is stale if its link lost
            # members or capacity since it was pushed (shares only rise,
            # so stale entries surface first and are discarded).
            link_share = float("inf")
            link_id = -1
            while heap:
                share, candidate = heap[0]
                loaded = count[candidate]
                if loaded == 0 or residual[candidate] / loaded != share:
                    heapq.heappop(heap)
                    continue
                link_share, link_id = share, candidate
                break
            while cap_heap and cap_heap[0][1] in frozen:
                heapq.heappop(cap_heap)
            if cap_heap and cap_heap[0][0] <= link_share:
                cap, flow = heapq.heappop(cap_heap)
                freeze(flow, cap)
                remaining -= 1
                continue
            if link_id < 0:
                raise RuntimeError(
                    "water-filling stalled with unfrozen flows (allocator bug)")
            # The link saturates: every unfrozen flow crossing it is
            # bottlenecked here and freezes at the link's fair share.
            heapq.heappop(heap)
            for flow in members[link_id]:
                if flow not in frozen:
                    freeze(flow, link_share)
                    remaining -= 1
        return rates


def allocation_is_feasible(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> bool:
    """Check that no link's capacity is exceeded (validation helper)."""
    load: Dict[Hashable, float] = {}
    for flow, links in flow_links.items():
        for link in links:
            load[link] = load.get(link, 0.0) + rates[flow]
    return all(load[link] <= capacities[link] * (1 + tolerance) for link in load)


def bottlenecked_flows(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
    tolerance: float = 1e-6,
) -> Dict[Hashable, bool]:
    """For each flow, whether it is bottlenecked (link saturated or cap hit).

    Max-min fairness requires *every* flow to be bottlenecked somewhere;
    the property tests assert this invariant.
    """
    caps = caps or {}
    load: Dict[Hashable, float] = {}
    for flow, links in flow_links.items():
        for link in links:
            load[link] = load.get(link, 0.0) + rates[flow]
    result: Dict[Hashable, bool] = {}
    for flow, links in flow_links.items():
        cap = caps.get(flow)
        if cap is not None and rates[flow] >= cap * (1 - tolerance):
            result[flow] = True
            continue
        result[flow] = any(
            load[link] >= capacities[link] * (1 - tolerance) for link in links)
        if not links:
            # Uncapped local flow: rate is inf, trivially "bottlenecked".
            result[flow] = True
    return result
