"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each with a list of links (directed edges with a
capacity) and an optional per-flow rate cap, compute the unique max-min
fair allocation: all rates rise together until a constraint binds; the
flows bound by it freeze; repeat on the residual network.

Rate caps model end-host limits such as disk read/write throughput or
application-level throttling (Hadoop's
``shuffle.parallelcopies`` is modelled structurally instead, by capping
concurrent fetches).

Two implementations live here:

* :func:`max_min_rates` — the textbook O(rounds × F × L) reference.
  Every call rebuilds link membership from scratch and scans all
  unfrozen flows per round.  It is kept as the correctness oracle for
  the differential property tests.
* :class:`FairShareAllocator` — the engine's hot-path allocator.  Link
  membership, per-flow link lists and rate caps persist across
  recomputes (``add_flow`` / ``remove_flow`` deltas), links are interned
  to dense integer ids (so the inner loop never hashes topology-node
  tuples), and the water-filling inner loop replaces the per-round
  ``min()`` scans with a lazy heap of link fair shares plus a heap of
  flow caps — O((F + L) log L) per recompute.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

_EPS = 1e-9


def max_min_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        Maps each flow key to the links it traverses.  A flow with no
        links (host-local transfer) is only limited by its cap, or gets
        ``inf`` if uncapped.
    capacities:
        Capacity of every link appearing in ``flow_links``, in bytes/s.
    caps:
        Optional per-flow maximum rate.

    Returns
    -------
    dict mapping every flow key to its allocated rate in bytes/s.
    """
    caps = caps or {}
    rates: Dict[Hashable, float] = {}
    # Residual capacity and the unfrozen flows crossing each link.
    residual: Dict[Hashable, float] = {}
    link_members: Dict[Hashable, set] = {}
    unfrozen: Dict[Hashable, List[Hashable]] = {}

    for flow, links in flow_links.items():
        links = list(links)
        if not links:
            rates[flow] = caps.get(flow, float("inf"))
            continue
        unfrozen[flow] = links
        for link in links:
            if link not in residual:
                capacity = capacities[link]
                if capacity <= 0:
                    raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
                residual[link] = capacity
                link_members[link] = set()
            link_members[link].add(flow)

    while unfrozen:
        # Fair share currently offered by each loaded link.
        fair: Dict[Hashable, float] = {
            link: residual[link] / len(members)
            for link, members in link_members.items() if members
        }
        # Each flow's attainable level this round.
        level: Dict[Hashable, float] = {}
        for flow, links in unfrozen.items():
            share = min(fair[link] for link in links)
            cap = caps.get(flow)
            if cap is not None:
                share = min(share, cap)
            level[flow] = share
        bottleneck = min(level.values())
        frozen = [flow for flow, value in level.items() if value <= bottleneck * (1 + _EPS)]
        for flow in frozen:
            rate = max(bottleneck, 0.0)
            rates[flow] = rate
            for link in unfrozen[flow]:
                residual[link] = max(residual[link] - rate, 0.0)
                link_members[link].discard(flow)
            del unfrozen[flow]
    return rates


class FairShareAllocator:
    """Stateful max-min allocator: persistent membership, heap inner loop.

    The allocator mirrors the active flow set of a
    :class:`~repro.net.network.FlowNetwork`: links are registered once
    with :meth:`set_capacity`, flows are added and removed as they
    arrive and complete, and :meth:`rates` computes the max-min fair
    allocation of whatever is currently active.  Rates agree with
    :func:`max_min_rates` to within floating-point noise (the
    differential tests pin this at 1e-6 relative).

    Freezing order: when the binding constraint is a flow cap it is
    applied before an equal link fair share, matching the reference's
    single-round grouping of ties.
    """

    __slots__ = ("_link_ids", "_link_caps", "_members", "_flow_links",
                 "_flow_caps", "recomputes", "rounds", "allocator_seconds")

    def __init__(self, capacities: Optional[Mapping[Hashable, float]] = None):
        self._link_ids: Dict[Hashable, int] = {}   # external link key -> dense id
        self._link_caps: List[float] = []          # id -> capacity, bytes/s
        self._members: List[Set[Hashable]] = []    # id -> flows crossing the link
        self._flow_links: Dict[Hashable, List[int]] = {}
        self._flow_caps: Dict[Hashable, float] = {}
        self.recomputes = 0
        self.rounds = 0
        self.allocator_seconds = 0.0
        if capacities:
            for link, capacity in capacities.items():
                self.set_capacity(link, capacity)

    def __len__(self) -> int:
        return len(self._flow_links)

    def __contains__(self, flow: Hashable) -> bool:
        return flow in self._flow_links

    def has_link(self, link: Hashable) -> bool:
        return link in self._link_ids

    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register a link (or update its capacity), in bytes/s."""
        if capacity <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
        link_id = self._link_ids.get(link)
        if link_id is None:
            self._link_ids[link] = len(self._link_caps)
            self._link_caps.append(float(capacity))
            self._members.append(set())
        else:
            self._link_caps[link_id] = float(capacity)

    def add_flow(self, flow: Hashable, links: Iterable[Hashable],
                 cap: Optional[float] = None) -> None:
        """Add an active flow crossing ``links``, optionally rate-capped."""
        if flow in self._flow_links:
            raise ValueError(f"flow {flow!r} is already active")
        if cap is not None and cap <= 0:
            raise ValueError(f"flow {flow!r} has non-positive cap {cap}")
        link_ids = self._link_ids
        try:
            ids = [link_ids[link] for link in links]
        except KeyError as missing:
            raise KeyError(
                f"unknown link {missing.args[0]!r}; call set_capacity first") from None
        self._flow_links[flow] = ids
        for link_id in ids:
            self._members[link_id].add(flow)
        if cap is not None:
            self._flow_caps[flow] = float(cap)

    def add_flows(self, entries: Sequence[Tuple[Hashable, Sequence[Hashable],
                                                Optional[float]]]) -> None:
        """Grouped :meth:`add_flow`: one call for a whole admission wave.

        ``entries`` is ``(flow, links, cap)`` per flow.  Same state
        transitions and validation as the per-flow calls in the same
        order — the grouping only hoists the attribute and dict lookups
        out of the per-flow path.
        """
        link_ids = self._link_ids
        flow_links = self._flow_links
        flow_caps = self._flow_caps
        members = self._members
        # Same-wave flows often share their ``links`` object (the
        # caller resolves each (src, dst) pair once); the resolved id
        # list is read-only, so sharing it between flows is safe.
        ids_memo: Dict[int, List[int]] = {}
        for flow, links, cap in entries:
            if flow in flow_links:
                raise ValueError(f"flow {flow!r} is already active")
            if cap is not None and cap <= 0:
                raise ValueError(f"flow {flow!r} has non-positive cap {cap}")
            ids = ids_memo.get(id(links))
            if ids is None:
                try:
                    ids = [link_ids[link] for link in links]
                except KeyError as missing:
                    raise KeyError(f"unknown link {missing.args[0]!r}; "
                                   f"call set_capacity first") from None
                ids_memo[id(links)] = ids
            flow_links[flow] = ids
            for link_id in ids:
                members[link_id].add(flow)
            if cap is not None:
                flow_caps[flow] = float(cap)

    def remove_flow(self, flow: Hashable) -> None:
        """Remove a completed (or aborted) flow."""
        ids = self._flow_links.pop(flow, None)
        if ids is None:
            raise KeyError(f"flow {flow!r} is not active")
        for link_id in ids:
            self._members[link_id].discard(flow)
        self._flow_caps.pop(flow, None)

    def remove_flows(self, flows: Sequence[Hashable]) -> None:
        """Grouped :meth:`remove_flow` for a completion wave, in order."""
        flow_links = self._flow_links
        flow_caps = self._flow_caps
        members = self._members
        for flow in flows:
            ids = flow_links.pop(flow, None)
            if ids is None:
                raise KeyError(f"flow {flow!r} is not active")
            for link_id in ids:
                members[link_id].discard(flow)
            flow_caps.pop(flow, None)

    def rates(self) -> Dict[Hashable, float]:
        """Max-min fair rates of all active flows (see :func:`max_min_rates`)."""
        started = _time.perf_counter()
        result = self._compute()
        self.recomputes += 1
        self.allocator_seconds += _time.perf_counter() - started
        return result

    def _compute(self) -> Dict[Hashable, float]:
        flow_caps = self._flow_caps
        members = self._members
        link_caps = self._link_caps
        rates: Dict[Hashable, float] = {}
        remaining = 0
        for flow, ids in self._flow_links.items():
            if ids:
                remaining += 1
            else:
                rates[flow] = flow_caps.get(flow, float("inf"))
        if not remaining:
            return rates

        # Per-recompute working state: residual capacity and unfrozen
        # member count per loaded link.  The member *sets* are never
        # copied — frozen flows are tracked in one set instead.
        count: Dict[int, int] = {}
        residual: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = []
        for link_id, flows_on in enumerate(members):
            loaded = len(flows_on)
            if loaded:
                count[link_id] = loaded
                residual[link_id] = link_caps[link_id]
                heap.append((link_caps[link_id] / loaded, link_id))
        heapq.heapify(heap)
        cap_heap: List[Tuple[float, Hashable]] = [
            (cap, flow) for flow, cap in flow_caps.items()
            if self._flow_links.get(flow)]
        heapq.heapify(cap_heap)
        frozen: Set[Hashable] = set()
        flow_links = self._flow_links

        # Water-fill in *bottleneck rounds*, grouped exactly like the
        # reference: each round finds the global minimum attainable
        # level B, freezes every unfrozen flow whose level is within
        # _EPS of B at rate max(B, 0), and absorbs the whole group in
        # one bulk per-link update (``residual - rate * shed``).  The
        # vectorized engine performs the same round arithmetic on dense
        # arrays, so the two engines agree bit for bit — the foundation
        # of the byte-identical-capture guarantee.
        while remaining:
            self.rounds += 1
            # The valid heap minimum: an entry is stale if its link lost
            # members or capacity since it was pushed (shares only rise,
            # so stale entries surface first and are discarded).
            link_share = float("inf")
            while heap:
                share, candidate = heap[0]
                loaded = count[candidate]
                if loaded == 0 or residual[candidate] / loaded != share:
                    heapq.heappop(heap)
                    continue
                link_share = share
                break
            while cap_heap and cap_heap[0][1] in frozen:
                heapq.heappop(cap_heap)
            cap_share = cap_heap[0][0] if cap_heap else float("inf")
            bottleneck = cap_share if cap_share < link_share else link_share
            if bottleneck == float("inf"):
                raise RuntimeError(
                    "water-filling stalled with unfrozen flows (allocator bug)")
            rate = bottleneck if bottleneck > 0.0 else 0.0
            threshold = bottleneck * (1.0 + _EPS)
            newly: List[Hashable] = []
            while cap_heap and cap_heap[0][0] <= threshold:
                _, capped = heapq.heappop(cap_heap)
                if capped not in frozen:
                    frozen.add(capped)
                    newly.append(capped)
            while heap and heap[0][0] <= threshold:
                share, candidate = heapq.heappop(heap)
                loaded = count[candidate]
                if loaded == 0 or residual[candidate] / loaded != share:
                    continue  # stale entry below the threshold: discard
                for flow in members[candidate]:
                    if flow not in frozen:
                        frozen.add(flow)
                        newly.append(flow)
            tally: Dict[int, int] = {}
            for flow in newly:
                rates[flow] = rate
                for link_id in flow_links[flow]:
                    tally[link_id] = tally.get(link_id, 0) + 1
            remaining -= len(newly)
            for link_id, shed in tally.items():
                left = count[link_id] - shed
                count[link_id] = left
                spare = residual[link_id] - rate * shed
                residual[link_id] = spare if spare > 0.0 else 0.0
                if left > 0:
                    heapq.heappush(heap, (residual[link_id] / left, link_id))
        return rates


def _link_loads(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
) -> Dict[Hashable, float]:
    """Per-link offered load.  Tolerant of engine differences: rate
    values may be python floats or numpy scalars (coerced), and flows
    absent from ``rates`` (e.g. not yet admitted by the engine under
    inspection) simply contribute nothing."""
    load: Dict[Hashable, float] = {}
    for flow, links in flow_links.items():
        rate = rates.get(flow)
        if rate is None or not links:
            continue
        rate = float(rate)
        for link in links:
            load[link] = load.get(link, 0.0) + rate
    return load


def allocation_is_feasible(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> bool:
    """Check that no link's capacity is exceeded (validation helper).

    Accepts rates from either engine: values are coerced through
    ``float`` (numpy scalars work), flows missing from ``rates`` are
    skipped, and the comparison allows ``tolerance`` relative slack so
    the last-bit noise between independently computed allocations never
    flips the verdict.
    """
    load = _link_loads(rates, flow_links)
    return all(load[link] <= float(capacities[link]) * (1.0 + tolerance)
               for link in load)


def bottlenecked_flows(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
    tolerance: float = 1e-6,
) -> Dict[Hashable, bool]:
    """For each flow, whether it is bottlenecked (link saturated or cap hit).

    Max-min fairness requires *every* flow to be bottlenecked somewhere;
    the property tests assert this invariant.  Like
    :func:`allocation_is_feasible` this is engine-agnostic: rates are
    coerced through ``float``, comparisons are tolerance-aware, and
    flows absent from ``rates`` are left out of the result.
    """
    caps = caps or {}
    load = _link_loads(rates, flow_links)
    result: Dict[Hashable, bool] = {}
    for flow, links in flow_links.items():
        if flow not in rates:
            continue
        rate = float(rates[flow])
        cap = caps.get(flow)
        if cap is not None and rate >= float(cap) * (1.0 - tolerance):
            result[flow] = True
            continue
        result[flow] = any(
            load[link] >= float(capacities[link]) * (1.0 - tolerance)
            for link in links)
        if not links:
            # Uncapped local flow: rate is inf, trivially "bottlenecked".
            result[flow] = True
    return result
