"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each with a list of links (directed edges with a
capacity) and an optional per-flow rate cap, compute the unique max-min
fair allocation: all rates rise together until a constraint binds; the
flows bound by it freeze; repeat on the residual network.

Rate caps model end-host limits such as disk read/write throughput or
application-level throttling (Hadoop's
``shuffle.parallelcopies`` is modelled structurally instead, by capping
concurrent fetches).

The implementation is the textbook O(iterations × F × L) algorithm;
iterations ≤ number of distinct bottleneck levels ≤ F.  For the flow
populations Hadoop jobs create (at most a few thousand concurrent
flows) this recomputation dominates nothing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

_EPS = 1e-9


def max_min_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        Maps each flow key to the links it traverses.  A flow with no
        links (host-local transfer) is only limited by its cap, or gets
        ``inf`` if uncapped.
    capacities:
        Capacity of every link appearing in ``flow_links``, in bytes/s.
    caps:
        Optional per-flow maximum rate.

    Returns
    -------
    dict mapping every flow key to its allocated rate in bytes/s.
    """
    caps = caps or {}
    rates: Dict[Hashable, float] = {}
    # Residual capacity and the unfrozen flows crossing each link.
    residual: Dict[Hashable, float] = {}
    link_members: Dict[Hashable, set] = {}
    unfrozen: Dict[Hashable, List[Hashable]] = {}

    for flow, links in flow_links.items():
        links = list(links)
        if not links:
            rates[flow] = caps.get(flow, float("inf"))
            continue
        unfrozen[flow] = links
        for link in links:
            if link not in residual:
                capacity = capacities[link]
                if capacity <= 0:
                    raise ValueError(f"link {link!r} has non-positive capacity {capacity}")
                residual[link] = capacity
                link_members[link] = set()
            link_members[link].add(flow)

    while unfrozen:
        # Fair share currently offered by each loaded link.
        fair: Dict[Hashable, float] = {
            link: residual[link] / len(members)
            for link, members in link_members.items() if members
        }
        # Each flow's attainable level this round.
        level: Dict[Hashable, float] = {}
        for flow, links in unfrozen.items():
            share = min(fair[link] for link in links)
            cap = caps.get(flow)
            if cap is not None:
                share = min(share, cap)
            level[flow] = share
        bottleneck = min(level.values())
        frozen = [flow for flow, value in level.items() if value <= bottleneck * (1 + _EPS)]
        for flow in frozen:
            rate = max(bottleneck, 0.0)
            rates[flow] = rate
            for link in unfrozen[flow]:
                residual[link] = max(residual[link] - rate, 0.0)
                link_members[link].discard(flow)
            del unfrozen[flow]
    return rates


def allocation_is_feasible(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> bool:
    """Check that no link's capacity is exceeded (validation helper)."""
    load: Dict[Hashable, float] = {}
    for flow, links in flow_links.items():
        for link in links:
            load[link] = load.get(link, 0.0) + rates[flow]
    return all(load[link] <= capacities[link] * (1 + tolerance) for link in load)


def bottlenecked_flows(
    rates: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    caps: Optional[Mapping[Hashable, float]] = None,
    tolerance: float = 1e-6,
) -> Dict[Hashable, bool]:
    """For each flow, whether it is bottlenecked (link saturated or cap hit).

    Max-min fairness requires *every* flow to be bottlenecked somewhere;
    the property tests assert this invariant.
    """
    caps = caps or {}
    load: Dict[Hashable, float] = {}
    for flow, links in flow_links.items():
        for link in links:
            load[link] = load.get(link, 0.0) + rates[flow]
    result: Dict[Hashable, bool] = {}
    for flow, links in flow_links.items():
        cap = caps.get(flow)
        if cap is not None and rates[flow] >= cap * (1 - tolerance):
            result[flow] = True
            continue
        result[flow] = any(
            load[link] >= capacities[link] * (1 - tolerance) for link in links)
        if not links:
            # Uncapped local flow: rate is inf, trivially "bottlenecked".
            result[flow] = True
    return result
