"""The fluid network simulator: flows over a topology, max-min shared.

Mechanics
---------
The network keeps the set of active flows.  Whenever the set changes
(a flow starts or completes) it:

1. advances every active flow's ``remaining`` by ``rate × elapsed``,
2. recomputes all rates with the stateful
   :class:`~repro.net.fairshare.FairShareAllocator`,
3. schedules one completion event at the earliest projected finish.

Same-timestamp batching
-----------------------
Hadoop emits flows in synchronized waves — a reducer's shuffle
slow-start, the hops of a replication pipeline, every fetcher waking on
the same map completion.  Rather than recomputing rates once per flow,
an update *request* schedules a single zero-delay **flush** event at a
late intra-timestep priority; every further start/completion at the
same instant coalesces into it, so a 100-fetch wave costs one rate
recomputation.  This is semantics-preserving: no simulated time passes
between the requests and the flush, so intermediate rates would never
have been applied over a non-zero interval anyway.  Constructing the
network with ``batch_updates=False`` restores the legacy
recompute-per-change behaviour (the trace-equivalence tests compare the
two modes flow-by-flow).

Synchronous producers that start several flows back to back (the HDFS
replication pipeline) can additionally wrap the burst in
``with net.batch(): ...`` which defers even the flush scheduling until
the block exits.

Host-local transfers (``src == dst``) never touch links; they complete
at the flow's rate cap (typically the disk rate) and are flagged
``local`` so the capture stage can exclude them, exactly as a NIC-level
``tcpdump`` would never see loopback DataNode traffic.

Per-link delivered bytes are accumulated on every update, giving the
utilisation series used by experiment E11.  Performance counters for
the whole fluid engine live on :attr:`FlowNetwork.perf`.

Engines
-------
The fluid dynamics have two interchangeable implementations selected by
``engine``: ``scalar`` (the original per-flow dict/heap code below) and
``vectorized`` (:mod:`repro.net.vectorized`), which holds rates,
remaining bytes and link incidence in dense numpy arrays so progress
advancement, completion harvesting and water-filling are array
expressions.  Both perform the identical IEEE-754 round arithmetic, so
a capture is byte-identical across engines; only wall-clock cost
differs.  The differential suite in
``tests/test_fairshare_incremental.py`` enforces this.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.topology import Host, Topology
from repro.net.backend import ENGINE_NAMES, FlowRequest, TransportBackend
from repro.net.fairshare import FairShareAllocator
from repro.net.flow import Flow, flow_id_stream
from repro.simkit.core import Event, Simulator

_DONE_EPS_BYTES = 0.5

# Flushes run after every other event of the same timestamp (processes
# resume at priority 0, completion horizons fire at -1), so an entire
# same-instant wave — including starts triggered by completions earlier
# in the timestep — lands in one rate recomputation.
_FLUSH_PRIORITY = 1


class FlowNetwork(TransportBackend):
    """Flow-level network over a :class:`~repro.cluster.topology.Topology`.

    The reference (and default) :class:`~repro.net.backend.
    TransportBackend`, registered as ``fluid``.

    ``hop_latency`` (seconds per hop, default 0) adds a connection-setup
    delay of 1.5 RTTs before a flow starts moving bytes — the TCP
    handshake cost that dominates the duration of small control flows
    while being invisible on bulk transfers.  The flow's recorded
    duration includes it, as a packet capture's would.

    ``batch_updates`` (default True) enables same-timestamp coalescing
    of rate recomputations; see the module docstring.

    ``engine`` selects the fluid-dynamics implementation: ``scalar``
    (default) or ``vectorized`` (numpy; see the module docstring).
    """

    name = "fluid"

    def __init__(self, sim: Simulator, topology: Topology,
                 hop_latency: float = 0.0, batch_updates: bool = True,
                 engine: str = "scalar"):
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        if engine not in ENGINE_NAMES:
            known = ", ".join(ENGINE_NAMES)
            raise ValueError(f"unknown fluid engine {engine!r}; known: {known}")
        self.engine = engine
        # Set before super().__init__: the base class assigns
        # ``link_bytes``, which is a property below and whose getter
        # consults ``_vec``.
        self._vec = None
        self._link_bytes: Dict[Any, float] = {}
        super().__init__(sim, topology)
        self.hop_latency = hop_latency
        self.batch_updates = batch_updates
        # Per-network flow ids: simulations are reproducible no matter
        # how many flows earlier clusters in this process created.
        self._flow_ids = flow_id_stream()
        if engine == "vectorized":
            try:
                from repro.net.vectorized import (
                    VectorizedFairShareAllocator,
                    VectorizedFlowState,
                )
            except ImportError:
                raise RuntimeError(
                    "engine 'vectorized' requires numpy, which is not "
                    "installed; use engine='scalar'") from None
            self._allocator = VectorizedFairShareAllocator()
            self._vec = VectorizedFlowState(self._allocator)
        else:
            self._allocator = FairShareAllocator()
        self._completion_event: Optional[Event] = None
        self._flush_event: Optional[Event] = None
        self._batch_depth = 0
        self._batch_dirty = False
        self._last_progress = -1.0
        # Perf counters live on the simulator's telemetry registry
        # (the old ``net.perf`` attributes survive as properties); the
        # allocator keeps plain ints and is exposed via callback gauges.
        self.telemetry = sim.telemetry
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._c_updates = registry.counter("net.updates_requested")
        self._c_flushes = registry.counter("net.flushes")
        self._c_batched = registry.counter("net.flows_batched")
        self._c_bulk_harvests = registry.counter("net.bulk_harvests")
        self._c_flows_started = registry.counter("net.flows_started")
        self._c_flows_completed = registry.counter("net.flows_completed")
        self._c_bytes_completed = registry.counter("net.bytes_completed")
        registry.gauge("net.active_flows", fn=lambda: len(self.active))
        registry.gauge("net.recomputes",
                       fn=lambda: self._allocator.recomputes)
        registry.gauge("net.waterfill_rounds",
                       fn=lambda: self._allocator.rounds)
        registry.gauge("net.allocator_seconds",
                       fn=lambda: self._allocator.allocator_seconds)
        registry.gauge("net.engine", engine=self.engine).set(1.0)

    # -- observation ---------------------------------------------------------

    @property
    def allocator(self):
        """The stateful rate allocator mirroring the active flow set.

        A :class:`~repro.net.fairshare.FairShareAllocator` or its
        vectorized twin, depending on ``engine``.
        """
        return self._allocator

    @property
    def link_bytes(self) -> Dict[Any, float]:
        """Per-link delivered bytes (materialised lazily when vectorized)."""
        vec = self._vec
        if vec is not None and vec.links_dirty:
            vec.export_link_bytes(self._link_bytes)
        return self._link_bytes

    @link_bytes.setter
    def link_bytes(self, value: Dict[Any, float]) -> None:
        self._link_bytes = value

    @property
    def perf(self) -> dict:
        """Fluid-engine performance counters (cumulative)."""
        return {
            "engine": self.engine,
            "recomputes": self._allocator.recomputes,
            "waterfill_rounds": self._allocator.rounds,
            "allocator_seconds": self._allocator.allocator_seconds,
            "updates_requested": self.updates_requested,
            "flushes": self.flushes,
            "flows_batched": self.flows_batched,
            "flows_admitted_batched": int(self._c_batch_admitted.value),
            "bulk_harvests": int(self._c_bulk_harvests.value),
            "done_signals_skipped": int(self._c_done_skipped.value),
        }

    @property
    def updates_requested(self) -> int:
        """Update requests so far (compatibility view of the registry)."""
        return int(self._c_updates.value)

    @property
    def flushes(self) -> int:
        return int(self._c_flushes.value)

    @property
    def flows_batched(self) -> int:
        return int(self._c_batched.value)

    # -- flow lifecycle -------------------------------------------------------

    def start_flow(self, src: Host, dst: Host, size: float,
                   max_rate: Optional[float] = None,
                   metadata: Optional[Dict[str, Any]] = None,
                   parent_span=None) -> Flow:
        """Begin transferring ``size`` bytes from ``src`` to ``dst``.

        Returns the :class:`Flow`; its ``done`` signal fires (with the
        flow as payload) at the fluid completion time.  ``parent_span``
        attaches the flow's telemetry span (emitted on completion when
        tracing is enabled) under a lifecycle span.
        """
        flow = Flow(src, dst, size, self.sim, max_rate=max_rate,
                    metadata=metadata, flow_id=next(self._flow_ids))
        flow.span_parent = parent_span
        self._c_flows_started.value += 1
        flow.start_time = self.sim.now
        flow.last_update = self.sim.now
        if flow.local or size == 0:
            delay = 0.0 if size == 0 or max_rate is None else size / max_rate
            self.sim.schedule(delay, self._complete_local, flow)
            return flow
        flow.path = self.topology.path(src, dst)
        flow.links = self.topology.edges_on_path(flow.path)
        for link in flow.links:
            if link not in self._capacities:
                capacity = self.topology.capacity(*link)
                self._capacities[link] = capacity
                self._allocator.set_capacity(link, capacity)
        if self.hop_latency > 0:
            setup = 1.5 * (2.0 * len(flow.links) * self.hop_latency)
            self.sim.schedule(setup, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def start_flows(self, requests: Sequence[FlowRequest]) -> List[Flow]:
        """Native wave admission: one pass, one allocator batch, one flush.

        Paths and links are resolved (and capacities interned) for the
        whole wave in a single loop; every zero-setup non-local flow is
        activated through one bulk allocator insertion and exactly one
        coalesced rate-update request.  Event-order equivalence with a
        per-request :meth:`start_flow` loop:

        * flow ids are drawn in request order from the same stream;
        * local/zero-size completions group by *identical* delay into
          one heap event each (group-internal order is request order;
          distinct delays mean distinct fire times, so heap order never
          falls back to sequence numbers);
        * the flush runs at ``_FLUSH_PRIORITY`` after every priority-0
          event of the instant, so whether it was scheduled at the
          first activation (per-flow path) or after the loop (here) is
          unobservable;
        * with ``hop_latency`` the delayed activations group by
          identical setup time, again preserving request order.

        Captures are therefore byte-identical across the two admission
        paths (``tests/test_flow_batching.py`` pins this per backend ×
        engine).
        """
        sim = self.sim
        now = sim.now
        topology = self.topology
        capacities = self._capacities
        allocator = self._allocator
        flow_ids = self._flow_ids
        hop_latency = self.hop_latency
        flows: List[Flow] = []
        local_groups: Dict[float, List[Flow]] = {}
        setup_groups: Dict[float, List[Flow]] = {}
        ready: List[Flow] = []
        # Wave-level (src, dst) memo: a shuffle or bench wave admits
        # many flows over few distinct host pairs, so each pair pays
        # for path lookup, edge listing and capacity interning once per
        # wave instead of once per flow.  The links list is shared
        # between same-pair flows — it is read-only downstream (both
        # allocators derive their own id lists from it).
        resolved_pairs: Dict[Any, Any] = {}
        self._c_flows_started.value += len(requests)
        self._c_batch_admitted.value += len(requests)
        for request in requests:
            flow = Flow(request.src, request.dst, request.size, sim,
                        max_rate=request.max_rate, metadata=request.metadata,
                        flow_id=next(flow_ids))
            flow.span_parent = request.parent_span
            flow.start_time = now
            flow.last_update = now
            flows.append(flow)
            if flow.local or flow.size == 0:
                delay = (0.0 if flow.size == 0 or flow.max_rate is None
                         else flow.size / flow.max_rate)
                local_groups.setdefault(delay, []).append(flow)
                continue
            pair = (request.src, request.dst)
            resolved = resolved_pairs.get(pair)
            if resolved is None:
                path = topology.path(request.src, request.dst)
                links = topology.edges_on_path(path)
                for link in links:
                    if link not in capacities:
                        capacity = topology.capacity(*link)
                        capacities[link] = capacity
                        allocator.set_capacity(link, capacity)
                resolved = (path, links)
                resolved_pairs[pair] = resolved
            flow.path, flow.links = resolved
            if hop_latency > 0:
                setup = 1.5 * (2.0 * len(flow.links) * hop_latency)
                setup_groups.setdefault(setup, []).append(flow)
            else:
                ready.append(flow)
        for delay, group in local_groups.items():
            if len(group) == 1:
                sim.schedule(delay, self._complete_local, group[0])
            else:
                sim.schedule(delay, self._complete_local_wave, group)
        for setup, group in setup_groups.items():
            if len(group) == 1:
                sim.schedule(setup, self._activate, group[0])
            else:
                sim.schedule(setup, self._activate_wave, group)
        if ready:
            self._activate_wave(ready)
        return flows

    @contextmanager
    def batch(self):
        """Coalesce rate updates for flows started inside the block.

        Intended for producers that start several flows synchronously
        (no ``yield`` in between), e.g. the hops of an HDFS replication
        pipeline.  No simulated time may pass inside the block.  With
        ``batch_updates=False`` this is a no-op, preserving the legacy
        recompute-per-change semantics exactly.
        """
        if not self.batch_updates:
            yield self
            return
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_dirty:
                self._batch_dirty = False
                self._schedule_flush()

    def _activate(self, flow: Flow) -> None:
        flow.last_update = self.sim.now
        self.active[flow.flow_id] = flow
        if self._vec is not None:
            self._vec.add(flow)
        else:
            self._allocator.add_flow(flow.flow_id, flow.links, flow.max_rate)
        self._request_update()

    def _activate_wave(self, flows: Sequence[Flow]) -> None:
        """Activate a same-instant group: one allocator batch, one update.

        The single :meth:`_request_update` is exact: no simulated time
        passes inside the wave, so the per-flow path's intermediate
        update requests all coalesce into the same flush anyway.
        """
        now = self.sim.now
        active = self.active
        if self._vec is not None:
            for flow in flows:
                flow.last_update = now
                active[flow.flow_id] = flow
            self._vec.add_batch(flows)
        else:
            entries = []
            for flow in flows:
                flow.last_update = now
                active[flow.flow_id] = flow
                entries.append((flow.flow_id, flow.links, flow.max_rate))
            self._allocator.add_flows(entries)
        self._request_update()

    def _complete_local_wave(self, flows: Sequence[Flow]) -> None:
        """Complete a same-delay local group from one heap event.

        One event for the group instead of one per flow; completing
        them back to back inside the event preserves every observable
        ordering because the per-flow events would have been seq-
        adjacent at this (time, priority) anyway, and the resume events
        their done-signals schedule land after the group in both
        shapes.
        """
        for flow in flows:
            self._complete_local(flow)

    def _complete_local(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.end_time = self.sim.now
        flow.rate = 0.0
        self.completed_count += 1
        self.total_bytes += flow.size
        self._note_completed(flow)
        self._finish(flow)

    def cancel_flow(self, flow: Flow) -> bool:
        """Abandon an in-flight flow; its ``done`` signal never fires.

        The flow leaves the allocator immediately, so the freed share
        is redistributed at the next (coalesced) rate recomputation.
        """
        if flow.flow_id not in self.active:
            return False
        # Competitors' progress under the pre-cancellation rates is
        # banked before the allocator changes shape.
        self._advance_progress()
        del self.active[flow.flow_id]
        if self._vec is not None:
            self._vec.remove(flow)
        else:
            self._allocator.remove_flow(flow.flow_id)
        flow.rate = 0.0
        self._request_update()
        return True

    def _note_completed(self, flow: Flow) -> None:
        self._c_flows_completed.value += 1
        self._c_bytes_completed.value += flow.size
        if self._tracer.enabled:
            self._tracer.emit(
                "flow", f"flow[{flow.flow_id}]",
                flow.start_time, self.sim.now,
                parent=flow.span_parent,
                src=flow.src.name, dst=flow.dst.name, size=flow.size,
                component=flow.metadata.get("component", ""),
                local=flow.local)

    # -- fluid dynamics -------------------------------------------------------

    def _request_update(self) -> None:
        """The active flow set changed: recompute now, or batch it."""
        self._c_updates.value += 1
        if not self.batch_updates:
            self._advance_and_reschedule()
            return
        if self._batch_depth > 0:
            if self._batch_dirty:
                self._c_batched.value += 1
            self._batch_dirty = True
            return
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._flush_event is not None:
            self._c_batched.value += 1
            return
        self._flush_event = self.sim.schedule(
            0.0, self._flush, priority=_FLUSH_PRIORITY)

    def _flush(self) -> None:
        self._flush_event = None
        self._c_flushes.value += 1
        self._advance_and_reschedule()

    def _complete_due(self) -> None:
        """The scheduled completion horizon was reached."""
        self._completion_event = None
        if not self.batch_updates:
            self._advance_and_reschedule()
            return
        # Harvest *before* the flush so completion signals fire first
        # and any same-instant reactions (a dependent transfer, the next
        # shuffle fetch) join this timestep's single recomputation.
        self._advance_progress()
        self._harvest_finished()
        self._schedule_flush()

    def _advance_progress(self) -> None:
        now = self.sim.now
        if now == self._last_progress:
            # Already advanced at this instant; every flow activated
            # since then had its ``last_update`` pinned to ``now``, so
            # the scan would be a pure no-op.
            return
        if self._vec is not None:
            # A uniform elapsed is exact here: every activation triggers
            # a same-instant flush, so at this point every flow either
            # advanced at ``_last_progress`` or joined later with rate 0
            # (rates are only assigned by the post-advance recompute) —
            # for the latecomers ``rate × elapsed`` is 0 regardless.
            self._vec.advance(now - self._last_progress)
            self._last_progress = now
            return
        self._last_progress = now
        link_bytes = self.link_bytes
        for flow in self.active.values():
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                moved = min(flow.rate * elapsed, flow.remaining)
                flow.remaining -= moved
                for link in flow.links:
                    link_bytes[link] += moved
            flow.last_update = now

    def _recompute_rates(self) -> None:
        if self._vec is not None:
            # Rates live in the allocator's array; Flow.rate is not
            # maintained per flow (nothing outside the scalar paths
            # reads it — probes go through ``throughput_gbps``).
            self._allocator.recompute()
            return
        rates = self._allocator.rates()
        for flow_id, flow in self.active.items():
            flow.rate = rates[flow_id]

    def _advance_and_reschedule(self) -> None:
        self._advance_progress()
        self._harvest_finished()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self.active:
            return
        self._recompute_rates()
        if self._vec is not None:
            horizon = self._vec.horizon()
        else:
            horizon = min(
                flow.remaining / flow.rate if flow.rate > 0 else float("inf")
                for flow in self.active.values())
        if horizon == float("inf"):
            raise RuntimeError(
                "active flows exist but none can make progress (zero rates)")
        self._completion_event = self.sim.schedule(
            horizon, self._complete_due, priority=-1)

    def throughput_gbps(self) -> float:
        if self._vec is not None:
            return self._vec.throughput_bytes() * 8 / 1e9
        return super().throughput_gbps()

    def _harvest_finished(self) -> None:
        vec = self._vec
        if vec is not None:
            finished = vec.finished(_DONE_EPS_BYTES)
        else:
            finished = [flow for flow in self.active.values()
                        if flow.remaining <= _DONE_EPS_BYTES]
        if not finished:
            return
        now = self.sim.now
        active = self.active
        if len(finished) == 1:
            flow = finished[0]
            del active[flow.flow_id]
            if vec is not None:
                vec.remove(flow)
            else:
                self._allocator.remove_flow(flow.flow_id)
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.end_time = now
            self.completed_count += 1
            self.total_bytes += flow.size
            self._note_completed(flow)
            self._finish(flow)
            return
        # Bulk path: the whole completion wave leaves the allocator in
        # one grouped call and fires done-signals/listeners from one
        # loop.  ``_finish_wave`` reproduces the per-flow drained
        # semantics (pending harvestees still counted as occupying the
        # backend), and the vectorized removal folds delivered bytes in
        # the same per-flow order as sequential removes, so nothing
        # observable moves.
        self._c_bulk_harvests.value += 1
        for flow in finished:
            del active[flow.flow_id]
        if vec is not None:
            vec.remove_batch(finished)
        else:
            self._allocator.remove_flows(
                [flow.flow_id for flow in finished])
        self.completed_count += len(finished)
        for flow in finished:
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.end_time = now
            self.total_bytes += flow.size
            self._note_completed(flow)
        self._finish_wave(finished)
