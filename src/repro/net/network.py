"""The fluid network simulator: flows over a topology, max-min shared.

Mechanics
---------
The network keeps the set of active flows.  Whenever the set changes
(a flow starts or completes) it:

1. advances every active flow's ``remaining`` by ``rate × elapsed``,
2. recomputes all rates with :func:`repro.net.fairshare.max_min_rates`,
3. schedules one completion event at the earliest projected finish.

Host-local transfers (``src == dst``) never touch links; they complete
at the flow's rate cap (typically the disk rate) and are flagged
``local`` so the capture stage can exclude them, exactly as a NIC-level
``tcpdump`` would never see loopback DataNode traffic.

Per-link delivered bytes are accumulated on every update, giving the
utilisation series used by experiment E11.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.topology import Host, Topology
from repro.net.fairshare import max_min_rates
from repro.net.flow import Flow
from repro.simkit.core import Event, Simulator

_DONE_EPS_BYTES = 0.5


class FlowNetwork:
    """Flow-level network over a :class:`~repro.cluster.topology.Topology`.

    ``hop_latency`` (seconds per hop, default 0) adds a connection-setup
    delay of 1.5 RTTs before a flow starts moving bytes — the TCP
    handshake cost that dominates the duration of small control flows
    while being invisible on bulk transfers.  The flow's recorded
    duration includes it, as a packet capture's would.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 hop_latency: float = 0.0):
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        self.sim = sim
        self.topology = topology
        self.hop_latency = hop_latency
        self.active: Dict[int, Flow] = {}
        self.completed_count = 0
        self.total_bytes = 0.0
        self.link_bytes: Dict[Tuple[object, object], float] = {}
        self._capacities: Dict[Tuple[object, object], float] = {}
        self._completion_event: Optional[Event] = None
        self._listeners: List[Callable[[Flow], None]] = []

    # -- observation ---------------------------------------------------------

    def add_listener(self, callback: Callable[[Flow], None]) -> None:
        """Register a callback invoked with every completed flow."""
        self._listeners.append(callback)

    def utilisation(self, link: Tuple[object, object]) -> float:
        """Mean utilisation of a directed link since t=0 (fraction)."""
        if self.sim.now <= 0:
            return 0.0
        capacity = self._capacities.get(link)
        if capacity is None:
            capacity = self.topology.capacity(*link)
        return self.link_bytes.get(link, 0.0) / (capacity * self.sim.now)

    # -- flow lifecycle -------------------------------------------------------

    def start_flow(self, src: Host, dst: Host, size: float,
                   max_rate: Optional[float] = None,
                   metadata: Optional[Dict[str, Any]] = None) -> Flow:
        """Begin transferring ``size`` bytes from ``src`` to ``dst``.

        Returns the :class:`Flow`; its ``done`` signal fires (with the
        flow as payload) at the fluid completion time.
        """
        done = self.sim.signal(name="flow.done")
        flow = Flow(src, dst, size, done, max_rate=max_rate, metadata=metadata)
        flow.start_time = self.sim.now
        flow.last_update = self.sim.now
        if flow.local or size == 0:
            delay = 0.0 if size == 0 or max_rate is None else size / max_rate
            self.sim.schedule(delay, self._complete_local, flow)
            return flow
        flow.path = self.topology.path(src, dst)
        flow.links = self.topology.edges_on_path(flow.path)
        for link in flow.links:
            if link not in self._capacities:
                self._capacities[link] = self.topology.capacity(*link)
        if self.hop_latency > 0:
            setup = 1.5 * (2.0 * len(flow.links) * self.hop_latency)
            self.sim.schedule(setup, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def _activate(self, flow: Flow) -> None:
        flow.last_update = self.sim.now
        self.active[flow.flow_id] = flow
        self._advance_and_reschedule()

    def _complete_local(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.end_time = self.sim.now
        flow.rate = 0.0
        self.completed_count += 1
        self.total_bytes += flow.size
        flow.done.fire(flow)
        for listener in self._listeners:
            listener(flow)

    # -- fluid dynamics -------------------------------------------------------

    def _advance_progress(self) -> None:
        now = self.sim.now
        for flow in self.active.values():
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                moved = min(flow.rate * elapsed, flow.remaining)
                flow.remaining -= moved
                for link in flow.links:
                    self.link_bytes[link] = self.link_bytes.get(link, 0.0) + moved
            flow.last_update = now

    def _recompute_rates(self) -> None:
        flow_links = {flow_id: flow.links for flow_id, flow in self.active.items()}
        caps = {flow_id: flow.max_rate for flow_id, flow in self.active.items()
                if flow.max_rate is not None}
        rates = max_min_rates(flow_links, self._capacities, caps)
        for flow_id, flow in self.active.items():
            flow.rate = rates[flow_id]

    def _advance_and_reschedule(self) -> None:
        self._advance_progress()
        self._harvest_finished()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self.active:
            return
        self._recompute_rates()
        horizon = min(
            flow.remaining / flow.rate if flow.rate > 0 else float("inf")
            for flow in self.active.values())
        if horizon == float("inf"):
            raise RuntimeError(
                "active flows exist but none can make progress (zero rates)")
        self._completion_event = self.sim.schedule(
            horizon, self._advance_and_reschedule, priority=-1)

    def _harvest_finished(self) -> None:
        finished = [flow for flow in self.active.values()
                    if flow.remaining <= _DONE_EPS_BYTES]
        for flow in finished:
            del self.active[flow.flow_id]
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.end_time = self.sim.now
            self.completed_count += 1
            self.total_bytes += flow.size
            flow.done.fire(flow)
            for listener in self._listeners:
                listener(flow)
