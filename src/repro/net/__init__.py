"""Flow-level (fluid) network simulator.

Models the cluster network as capacitated links shared by concurrent
flows under **max-min fairness** — the standard fluid approximation of
long-lived TCP flows, and the granularity at which Keddah captures and
reproduces Hadoop traffic (per-flow records, not per-packet).

Main entry point is :class:`~repro.net.network.FlowNetwork`:

* ``start_flow(src, dst, size)`` returns a :class:`~repro.net.flow.Flow`
  whose ``done`` signal fires at the fluid completion time;
* flow arrivals/departures trigger max-min rate recomputation
  (:mod:`repro.net.fairshare`); same-instant changes are coalesced into
  one recompute by a zero-delay flush (see ``FlowNetwork.batch``);
* listeners receive each completed flow, which is how the capture stage
  (:mod:`repro.capture`) observes traffic.
"""

from repro.net.backend import (
    BACKEND_NAMES,
    AnalyticBackend,
    FlowIntent,
    RecordBackend,
    TransportBackend,
    make_backend,
)
from repro.net.fairshare import FairShareAllocator, max_min_rates
from repro.net.flow import Flow
from repro.net.network import FlowNetwork

__all__ = [
    "AnalyticBackend",
    "BACKEND_NAMES",
    "FairShareAllocator",
    "Flow",
    "FlowIntent",
    "FlowNetwork",
    "RecordBackend",
    "TransportBackend",
    "make_backend",
    "max_min_rates",
]
