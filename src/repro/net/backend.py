"""The transport seam: pluggable backends behind one flow interface.

Every layer that produces traffic (HDFS pipelines, shuffle fetchers,
heartbeats, replay, fault recovery) emits *flow intents* — "move
``size`` bytes from ``src`` to ``dst``, tell me when done" — against
the :class:`TransportBackend` interface instead of constructing the
fluid engine directly.  Which substrate turns intents into timings is
a per-run configuration choice (``ClusterSpec.backend``, CLI
``--backend``):

``fluid``
    The original max-min fair-share engine
    (:class:`~repro.net.network.FlowNetwork`), unchanged semantics:
    every arrival/departure re-waterfills rates, completions are exact
    under the fluid approximation.  The reference substrate.

``analytic``
    A closed-form per-wave approximation
    (:class:`AnalyticBackend`): a flow's rate is fixed once, at
    admission, to its bottleneck share — ``min over links of
    capacity / concurrent flows`` — and its completion is scheduled
    immediately.  No global recomputation ever happens, so cost is
    O(path length) per flow instead of O(active flows × links) per
    event.  Flow populations (who sends what where) are preserved;
    *timings* are approximate.  Built for huge what-if campaigns where
    JCT trends matter and per-flow exactness does not.

``record``
    A zero-cost intent recorder (:class:`RecordBackend`): flows
    complete instantly and every intent is logged verbatim.  Feeding a
    replayed trace through it yields the exact flow schedule needed by
    the ns-3/OMNeT exporters without paying for a fluid run.

Backends register in :data:`BACKENDS` and are constructed through
:func:`make_backend`, the single factory used by
``HadoopCluster``, ``replay_trace`` and the CLI.  Future substrates
(packet-level, external-simulator bridges) plug in the same way.

Orthogonal to the backend choice, the fluid backend has an *engine*
axis (``ClusterSpec.engine``, CLI ``--engine``): ``scalar`` is the
original dict/heap implementation, ``vectorized`` the numpy
re-expression of the same water-filling (see
:mod:`repro.net.vectorized`).  The two are bit-compatible by
construction — same flows, same rates, byte-identical captures — so the
engine only changes how fast a run finishes, never what it records.
Backends without a fluid core accept and ignore the knob.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.cluster.topology import Host, Topology
from repro.net.flow import Flow, flow_id_stream
from repro.simkit.core import Simulator

#: Completion horizons fire at -1 and process resumes at 0; backend
#: flushes run after both so a whole same-instant wave shares one rate
#: decision (mirrors ``repro.net.network._FLUSH_PRIORITY``).
_WAVE_PRIORITY = 1


class FlowRequest:
    """One flow intent of a batched admission wave.

    A plain value object: what :meth:`TransportBackend.start_flow`
    takes as arguments, reified so producers can hand a whole wave to
    :meth:`TransportBackend.start_flows` in one call.
    """

    __slots__ = ("src", "dst", "size", "max_rate", "metadata", "parent_span")

    def __init__(self, src: Host, dst: Host, size: float,
                 max_rate: Optional[float] = None,
                 metadata: Optional[Dict[str, Any]] = None,
                 parent_span=None):
        self.src = src
        self.dst = dst
        self.size = size
        self.max_rate = max_rate
        self.metadata = metadata
        self.parent_span = parent_span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FlowRequest({self.src}->{self.dst} {self.size:.0f}B "
                f"max_rate={self.max_rate})")


class TransportBackend(ABC):
    """What the behaviour layers may assume about a transport substrate.

    The contract, shared by every implementation:

    * :meth:`start_flow` returns a :class:`~repro.net.flow.Flow` whose
      ``done`` signal fires (with the flow as payload) when the backend
      decides the transfer has completed.  Host-local transfers
      (``src == dst``) never touch links and complete at the flow's
      rate cap.
    * :meth:`start_flows` admits a whole synchronous wave of intents in
      one call (array-in, array-out), observationally identical to a
      per-request :meth:`start_flow` loop — same ids, same timings,
      byte-identical captures — but paid for once per wave instead of
      once per flow.  Hot producers (shuffle waves, pipeline hops)
      emit through it.
    * :meth:`batch` coalesces a synchronous burst of starts (an HDFS
      pipeline's hops) into one admission decision where the backend
      has one to make; backends without shared state treat it as a
      no-op.
    * :meth:`cancel_flow` abandons an in-flight flow without firing its
      ``done`` signal (future substrates; nothing in the current
      behaviour layers cancels).
    * Completion listeners (:meth:`add_listener`) observe every
      finished flow — the capture stage's tap — and drained listeners
      (:meth:`add_drained_listener`) fire whenever a completion leaves
      the backend with no active flows.
    * :attr:`perf` exposes cumulative engine counters and
      :meth:`utilisation` per-link mean utilisation since t=0.

    Subclasses must also keep the observable state probes sample:
    ``active`` (flow_id → Flow), ``link_bytes``, ``_capacities``,
    ``completed_count`` and ``total_bytes``.
    """

    #: Registry name; subclasses override ("fluid", "analytic", ...).
    name: str = "abstract"

    def __init__(self, sim: Simulator, topology: Topology):
        self.sim = sim
        self.topology = topology
        self.active: Dict[int, Flow] = {}
        self.completed_count = 0
        self.total_bytes = 0.0
        self.link_bytes: Dict[Tuple[object, object], float] = defaultdict(float)
        self._capacities: Dict[Tuple[object, object], float] = {}
        self._listeners: List[Callable[[Flow], None]] = []
        self._drained_listeners: List[Callable[[], None]] = []
        # Every backend announces itself on the run's registry so
        # telemetry artefacts (report --telemetry, campaign snapshots)
        # can distinguish fluid from analytic runs.
        registry = sim.telemetry.registry
        registry.gauge("net.backend", backend=self.name).set(1.0)
        #: Flows admitted through a native ``start_flows`` wave.
        self._c_batch_admitted = registry.counter("net.flows_admitted_batched")
        #: Completed flows whose ``done`` signal was never materialised
        #: (fire-and-forget producers; the lazy-signal saving).
        self._c_done_skipped = registry.counter("net.done_signals_skipped")

    # -- the flow interface ----------------------------------------------------

    @abstractmethod
    def start_flow(self, src: Host, dst: Host, size: float,
                   max_rate: Optional[float] = None,
                   metadata: Optional[Dict[str, Any]] = None,
                   parent_span=None) -> Flow:
        """Begin transferring ``size`` bytes from ``src`` to ``dst``."""

    def start_flows(self, requests: Sequence[FlowRequest]) -> List[Flow]:
        """Admit a synchronous wave of flow intents; flows in request order.

        Array-in, array-out: semantically identical to calling
        :meth:`start_flow` once per request, in order — same flow ids,
        same rates, same completion/listener ordering, byte-identical
        captures (the contract ``tests/test_flow_batching.py`` pins).
        Backends override this loop with native bulk paths that admit
        the whole wave in one pass; this default exists so any future
        substrate is batch-correct before it is batch-fast.
        """
        return [self.start_flow(request.src, request.dst, request.size,
                                max_rate=request.max_rate,
                                metadata=request.metadata,
                                parent_span=request.parent_span)
                for request in requests]

    @contextmanager
    def batch(self):
        """Coalesce flows started inside the block (default: no-op)."""
        yield self

    def cancel_flow(self, flow: Flow) -> bool:
        """Abandon an active flow; its ``done`` signal never fires.

        Returns True when the flow was active and is now cancelled.
        """
        if flow.flow_id not in self.active:
            return False
        del self.active[flow.flow_id]
        flow.rate = 0.0
        return True

    # -- listeners -------------------------------------------------------------

    def add_listener(self, callback: Callable[[Flow], None]) -> None:
        """Register a callback invoked with every completed flow."""
        self._listeners.append(callback)

    def add_drained_listener(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when the active flow set empties."""
        self._drained_listeners.append(callback)

    def _finish(self, flow: Flow) -> None:
        """Shared completion tail: listeners + drained notification."""
        done = flow._done
        if done is not None:
            done.fire(flow)
        else:
            # Nobody ever waited: firing would schedule nothing anyway,
            # so skipping the (never-allocated) signal is invisible.
            self._c_done_skipped.value += 1
        for listener in self._listeners:
            listener(flow)
        if not self.active:
            for listener in self._drained_listeners:
                listener()

    def _finish_wave(self, flows: Sequence[Flow]) -> None:
        """Bulk completion tail: one Python loop for a whole wave.

        Equivalent to calling :meth:`_finish` per flow *when the flows
        were already removed from* ``active`` *up front* (the fluid
        harvest's bulk path): per-flow semantics only ever fire the
        drained notification at a completion that leaves ``active``
        empty, which during a harvest loop can happen at the last
        finished flow alone — pending harvestees still occupy the
        active set at every earlier step.  ``pending`` reconstructs
        exactly that.
        """
        listeners = self._listeners
        pending = len(flows)
        for flow in flows:
            pending -= 1
            done = flow._done
            if done is not None:
                done.fire(flow)
            else:
                self._c_done_skipped.value += 1
            for listener in listeners:
                listener(flow)
            if not pending and not self.active:
                for listener in self._drained_listeners:
                    listener()

    # -- observation -----------------------------------------------------------

    @property
    @abstractmethod
    def perf(self) -> Dict[str, float]:
        """Cumulative engine performance counters."""

    def throughput_gbps(self) -> float:
        """Aggregate instantaneous rate over active flows, in Gbit/s.

        The probe-facing view; engines with array-resident rates
        override it so sampling never walks the flow set.
        """
        return sum(flow.rate for flow in self.active.values()) * 8 / 1e9

    def utilisation(self, link: Tuple[object, object]) -> float:
        """Mean utilisation of a directed link since t=0 (fraction)."""
        if self.sim.now <= 0:
            return 0.0
        capacity = self._capacities.get(link)
        if capacity is None:
            capacity = self.topology.capacity(*link)
        return self.link_bytes.get(link, 0.0) / (capacity * self.sim.now)


class AnalyticBackend(TransportBackend):
    """Closed-form bottleneck-share approximation of the fluid engine.

    A flow admitted at time *t* gets the rate ``min over its links of
    capacity(link) / active(link)`` — its max-min share *if* every link
    were its bottleneck and the competitor set frozen — capped by
    ``max_rate``, and completes exactly ``size / rate`` later.  Flows
    starting at the same instant form one *wave*: admission is deferred
    to a zero-delay flush so the whole wave sees the same concurrency
    counts (including each other), mirroring the fluid engine's
    same-timestamp batching.

    What this drops, deliberately: rates are never revised when
    competitors arrive or leave, so a flow that outlives its wave keeps
    its admission-time share (pessimistic) and one that gains company
    keeps its solo rate (optimistic).  Flow populations are identical
    to fluid — the behaviour layers emit the same intents — while
    completion times carry the approximation error.  In exchange the
    cost per flow is O(path length), with no global state to
    re-waterfill: the engine that makes thousand-point what-if sweeps
    affordable.

    ``hop_latency`` keeps the fluid engine's connection-setup semantics
    (1.5 RTTs before bytes move) so analytic JCTs stay comparable.
    """

    name = "analytic"

    def __init__(self, sim: Simulator, topology: Topology,
                 hop_latency: float = 0.0, **_ignored: Any):
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        super().__init__(sim, topology)
        self.hop_latency = hop_latency
        self._flow_ids = flow_id_stream()
        self._link_active: Dict[Tuple[object, object], int] = defaultdict(int)
        self._wave: List[Flow] = []
        self._wave_event = None
        self._batch_depth = 0
        registry = sim.telemetry.registry
        self._tracer = sim.telemetry.tracer
        self._c_flows_started = registry.counter("net.flows_started")
        self._c_flows_completed = registry.counter("net.flows_completed")
        self._c_bytes_completed = registry.counter("net.bytes_completed")
        self._c_waves = registry.counter("net.waves")
        registry.gauge("net.active_flows", fn=lambda: len(self.active))

    @property
    def perf(self) -> Dict[str, float]:
        return {
            "waves": int(self._c_waves.value),
            "flows_started": int(self._c_flows_started.value),
            "flows_completed": int(self._c_flows_completed.value),
        }

    # -- flow lifecycle --------------------------------------------------------

    def start_flow(self, src: Host, dst: Host, size: float,
                   max_rate: Optional[float] = None,
                   metadata: Optional[Dict[str, Any]] = None,
                   parent_span=None) -> Flow:
        flow = Flow(src, dst, size, self.sim, max_rate=max_rate,
                    metadata=metadata, flow_id=next(self._flow_ids))
        flow.span_parent = parent_span
        self._c_flows_started.value += 1
        flow.start_time = self.sim.now
        flow.last_update = self.sim.now
        if flow.local or size == 0:
            delay = 0.0 if size == 0 or max_rate is None else size / max_rate
            self.sim.schedule(delay, self._complete, flow)
            return flow
        flow.path = self.topology.path(src, dst)
        flow.links = self.topology.edges_on_path(flow.path)
        for link in flow.links:
            if link not in self._capacities:
                self._capacities[link] = self.topology.capacity(*link)
        if self.hop_latency > 0:
            setup = 1.5 * (2.0 * len(flow.links) * self.hop_latency)
            self.sim.schedule(setup, self._admit, flow)
        else:
            self._admit(flow)
        return flow

    def start_flows(self, requests: Sequence[FlowRequest]) -> List[Flow]:
        """Native wave admission: one pass, one wave flush, one loop.

        Event-order equivalence with the per-flow path: local/zero-size
        completions are grouped by identical delay into one heap event
        (within a group, request order is preserved; across groups the
        times differ, so heap order is by time, not seq), delayed
        admissions group by identical setup latency the same way, and
        the wave-flush event always runs at :data:`_WAVE_PRIORITY`
        after every priority-0 event of the instant — so scheduling it
        mid-loop (per-flow) or once (here) cannot reorder anything.
        """
        sim = self.sim
        now = sim.now
        topology = self.topology
        capacities = self._capacities
        flow_ids = self._flow_ids
        flows: List[Flow] = []
        local_groups: Dict[float, List[Flow]] = {}
        setup_groups: Dict[float, List[Flow]] = {}
        self._c_flows_started.value += len(requests)
        self._c_batch_admitted.value += len(requests)
        for request in requests:
            flow = Flow(request.src, request.dst, request.size, sim,
                        max_rate=request.max_rate, metadata=request.metadata,
                        flow_id=next(flow_ids))
            flow.span_parent = request.parent_span
            flow.start_time = now
            flow.last_update = now
            flows.append(flow)
            if flow.local or flow.size == 0:
                delay = (0.0 if flow.size == 0 or flow.max_rate is None
                         else flow.size / flow.max_rate)
                local_groups.setdefault(delay, []).append(flow)
                continue
            flow.path = topology.path(request.src, request.dst)
            flow.links = topology.edges_on_path(flow.path)
            for link in flow.links:
                if link not in capacities:
                    capacities[link] = topology.capacity(*link)
            if self.hop_latency > 0:
                setup = 1.5 * (2.0 * len(flow.links) * self.hop_latency)
                setup_groups.setdefault(setup, []).append(flow)
            else:
                self._admit(flow)
        for delay, group in local_groups.items():
            if len(group) == 1:
                sim.schedule(delay, self._complete, group[0])
            else:
                sim.schedule(delay, self._complete_wave, group)
        for setup, group in setup_groups.items():
            if len(group) == 1:
                sim.schedule(setup, self._admit, group[0])
            else:
                sim.schedule(setup, self._admit_group, group)
        return flows

    @contextmanager
    def batch(self):
        """Defer wave admission until the burst finishes (no time passes)."""
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._wave and self._wave_event is None:
                self._wave_event = self.sim.schedule(
                    0.0, self._admit_wave, priority=_WAVE_PRIORITY)

    def _admit(self, flow: Flow) -> None:
        flow.last_update = self.sim.now
        self.active[flow.flow_id] = flow
        for link in flow.links:
            self._link_active[link] += 1
        self._wave.append(flow)
        if self._batch_depth == 0 and self._wave_event is None:
            self._wave_event = self.sim.schedule(
                0.0, self._admit_wave, priority=_WAVE_PRIORITY)

    def _admit_group(self, flows: Sequence[Flow]) -> None:
        """Admit a same-setup-latency group from one heap event."""
        for flow in flows:
            self._admit(flow)

    def _complete_wave(self, flows: Sequence[Flow]) -> None:
        """Complete a same-delay local group from one heap event.

        Sequentially completing the group inside one event is
        order-identical to one event per flow: between consecutive
        per-flow completion events of a synchronous burst no other
        event can sit (burst events occupy a contiguous seq range), and
        the resume events their signals schedule land after the burst
        in both shapes.
        """
        for flow in flows:
            self._complete(flow)

    def _admit_wave(self) -> None:
        """Fix the whole wave's rates from current concurrency, once."""
        self._wave_event = None
        self._c_waves.value += 1
        wave, self._wave = self._wave, []
        link_active = self._link_active
        capacities = self._capacities
        for flow in wave:
            if flow.flow_id not in self.active:
                continue  # cancelled between admission and flush
            rate = min(capacities[link] / link_active[link]
                       for link in flow.links)
            if flow.max_rate is not None:
                rate = min(rate, flow.max_rate)
            flow.rate = rate
            self.sim.schedule(flow.size / rate, self._complete, flow,
                              priority=-1)

    def cancel_flow(self, flow: Flow) -> bool:
        if not super().cancel_flow(flow):
            return False
        for link in flow.links:
            self._link_active[link] -= 1
        return True

    def _complete(self, flow: Flow) -> None:
        if not flow.local and flow.size > 0:
            if flow.flow_id not in self.active:
                return  # cancelled while in flight
            del self.active[flow.flow_id]
            for link in flow.links:
                self._link_active[link] -= 1
                self.link_bytes[link] += flow.size
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.end_time = self.sim.now
        self.completed_count += 1
        self.total_bytes += flow.size
        self._c_flows_completed.value += 1
        self._c_bytes_completed.value += flow.size
        if self._tracer.enabled:
            self._tracer.emit(
                "flow", f"flow[{flow.flow_id}]",
                flow.start_time, self.sim.now,
                parent=flow.span_parent,
                src=flow.src.name, dst=flow.dst.name, size=flow.size,
                component=flow.metadata.get("component", ""),
                local=flow.local)
        self._finish(flow)


class FlowIntent:
    """One recorded flow intent: what was asked of the transport."""

    __slots__ = ("flow_id", "start", "src", "dst", "size", "max_rate",
                 "metadata")

    def __init__(self, flow_id: int, start: float, src: Host, dst: Host,
                 size: float, max_rate: Optional[float],
                 metadata: Dict[str, Any]):
        self.flow_id = flow_id
        self.start = start
        self.src = src
        self.dst = dst
        self.size = size
        self.max_rate = max_rate
        self.metadata = metadata

    def to_dict(self) -> Dict[str, Any]:
        return {"flow_id": self.flow_id, "start": self.start,
                "src": self.src.name, "dst": self.dst.name,
                "size": self.size, "max_rate": self.max_rate,
                "metadata": dict(self.metadata)}


class RecordBackend(TransportBackend):
    """Zero-cost substrate: log every intent, complete flows instantly.

    No rates, no links, no contention — a flow's ``done`` fires one
    zero-delay event after its start, so the behaviour layers run at
    compute-bound speed and the backend's :attr:`intents` stream holds
    the exact flow schedule they emitted.  Replaying a trace through
    this backend reproduces the trace's own schedule verbatim (replay
    schedules each flow at its recorded start time), which is all the
    ns-3/OMNeT/CSV exporters need.  Durations in a record-backend
    capture are degenerate (end == start) by construction.
    """

    name = "record"

    def __init__(self, sim: Simulator, topology: Topology,
                 **_ignored: Any):
        super().__init__(sim, topology)
        self._flow_ids = flow_id_stream()
        self.intents: List[FlowIntent] = []
        registry = sim.telemetry.registry
        self._c_intents = registry.counter("net.intents_recorded")
        registry.gauge("net.active_flows", fn=lambda: len(self.active))

    @property
    def perf(self) -> Dict[str, float]:
        return {"intents_recorded": int(self._c_intents.value)}

    def start_flow(self, src: Host, dst: Host, size: float,
                   max_rate: Optional[float] = None,
                   metadata: Optional[Dict[str, Any]] = None,
                   parent_span=None) -> Flow:
        flow = Flow(src, dst, size, self.sim, max_rate=max_rate,
                    metadata=metadata, flow_id=next(self._flow_ids))
        flow.span_parent = parent_span
        flow.start_time = self.sim.now
        flow.last_update = self.sim.now
        self.intents.append(FlowIntent(flow.flow_id, self.sim.now, src, dst,
                                       float(size), max_rate, flow.metadata))
        self._c_intents.value += 1
        self.active[flow.flow_id] = flow
        self.sim.schedule(0.0, self._complete, flow)
        return flow

    def start_flows(self, requests: Sequence[FlowRequest]) -> List[Flow]:
        """Native wave recording: one intent loop, one completion event.

        The per-flow path schedules one zero-delay completion per flow
        at consecutive seqs; completing the whole wave from a single
        event preserves every observable ordering (see
        ``AnalyticBackend._complete_wave``) while the burst costs one
        heap operation instead of N.
        """
        sim = self.sim
        now = sim.now
        flow_ids = self._flow_ids
        intents = self.intents
        active = self.active
        flows: List[Flow] = []
        for request in requests:
            flow = Flow(request.src, request.dst, request.size, sim,
                        max_rate=request.max_rate, metadata=request.metadata,
                        flow_id=next(flow_ids))
            flow.span_parent = request.parent_span
            flow.start_time = now
            flow.last_update = now
            intents.append(FlowIntent(flow.flow_id, now, request.src,
                                      request.dst, float(request.size),
                                      request.max_rate, flow.metadata))
            active[flow.flow_id] = flow
            flows.append(flow)
        self._c_intents.value += len(requests)
        self._c_batch_admitted.value += len(requests)
        if flows:
            sim.schedule(0.0, self._complete_wave, flows)
        return flows

    def _complete_wave(self, flows: Sequence[Flow]) -> None:
        for flow in flows:
            self._complete(flow)

    def _complete(self, flow: Flow) -> None:
        if self.active.pop(flow.flow_id, None) is None:
            return  # cancelled
        flow.remaining = 0.0
        flow.end_time = self.sim.now
        self.completed_count += 1
        self.total_bytes += flow.size
        self._finish(flow)


# -- factory -------------------------------------------------------------------------

#: name → backend class.  ``fluid`` is registered lazily by
#: :func:`make_backend` to keep this module import-light.
BACKENDS: Dict[str, Type[TransportBackend]] = {
    AnalyticBackend.name: AnalyticBackend,
    RecordBackend.name: RecordBackend,
}

#: The names :func:`make_backend` accepts (CLI choices, config checks).
BACKEND_NAMES = ("fluid", "analytic", "record")

#: The fluid-engine implementations (``ClusterSpec.engine``, CLI
#: ``--engine``): same water-filling, scalar dict/heap vs numpy arrays.
ENGINE_NAMES = ("scalar", "vectorized")


def make_backend(name: str, sim: Simulator, topology: Topology,
                 **cfg: Any) -> TransportBackend:
    """Construct the transport backend ``name`` over ``topology``.

    ``cfg`` passes substrate-specific knobs through (``hop_latency``,
    ``batch_updates`` and ``engine`` for fluid); backends ignore knobs
    they do not have.  Unknown names raise ``ValueError`` listing the
    registry.
    """
    if "fluid" not in BACKENDS:
        from repro.net.network import FlowNetwork

        BACKENDS["fluid"] = FlowNetwork
    backend_cls = BACKENDS.get(name)
    if backend_cls is None:
        known = ", ".join(sorted(set(BACKENDS) | set(BACKEND_NAMES)))
        raise ValueError(f"unknown transport backend {name!r}; known: {known}")
    return backend_cls(sim, topology, **cfg)
