"""Lifecycle event tracing: sim-time spans over the job pipeline.

A *span* is one interval of simulated time with a name, a kind, a
parent and free-form attributes.  The instrumented engine emits a span
tree covering the whole traffic-producing pipeline::

    job                      one JobDriver (all rounds)
    └─ round                 one MR round (AM lifetime)
       └─ stage              map / reduce phase of the round
          └─ task            one task attempt (map[i], reduce[i])
             ├─ fetch        one reducer's shuffle-fetch of one map output
             ├─ hdfs_write   one file's replication-pipeline write
             └─ flow         one network transfer (from FlowNetwork)

plus zero-duration *events* (kind ``event``) for point occurrences:
speculation, container loss, fetch recovery.

Spans carry **simulated** start/end times — the tracer never reads a
wall clock; every emit site passes ``sim.now`` explicitly, which keeps
the tracer trivially usable from any component holding the simulator.

Sinks are pluggable: :class:`NullSink` (drop everything — the default,
so the disabled path allocates nothing), :class:`MemorySink` (tests,
in-process reports) and :class:`FileSink` (JSONL, one span per line,
closed spans only).  A span line is a plain dict::

    {"span": 7, "parent": 3, "kind": "task", "name": "map[4]",
     "start": 12.25, "end": 13.875, "attrs": {"host": "h003"}}
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

SPAN_KINDS = ("job", "round", "stage", "task", "fetch", "hdfs_write",
              "flow", "event")


class Span:
    """One open or closed interval of simulated time."""

    __slots__ = ("span_id", "parent_id", "kind", "name", "start", "end",
                 "attrs")

    def __init__(self, span_id: int, kind: str, name: str, start: float,
                 parent_id: Optional[int] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"span": self.span_id, "parent": self.parent_id,
                "kind": self.kind, "name": self.name,
                "start": self.start, "end": self.end, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["span"], data["kind"], data["name"], data["start"],
                   parent_id=data.get("parent"), attrs=data.get("attrs") or {})
        span.end = data.get("end")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.kind}:{self.name}, {self.start:.3f}"
                f"->{self.end if self.end is None else round(self.end, 3)})")


#: Shared sentinel returned by a disabled tracer; accepts nothing, costs
#: nothing, and is safe to pass around as a parent.
NULL_SPAN = Span(-1, "null", "null", 0.0)


class TraceSink:
    """Destination for closed spans."""

    def emit(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class NullSink(TraceSink):
    """Discards everything; the disabled-path sink."""

    def emit(self, span: Span) -> None:
        pass


NULL_SINK = NullSink()


class MemorySink(TraceSink):
    """Keeps closed spans in a list (tests, in-process reporting)."""

    def __init__(self):
        self.spans: List[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)


class FileSink(TraceSink):
    """Appends one JSON line per closed span to a file."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self.emitted = 0

    def emit(self, span: Span) -> None:
        if self._handle is None:
            raise ValueError(f"FileSink({self.path!r}) already closed")
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Tracer:
    """Creates and closes spans against an explicit (simulated) clock.

    When ``enabled`` is False every call is a cheap no-op returning
    :data:`NULL_SPAN`, so instrumentation sites may call unconditionally
    (though hot paths still guard with ``tracer.enabled`` to skip
    argument construction).
    """

    def __init__(self, sink: TraceSink = NULL_SINK, enabled: bool = False):
        self.sink = sink
        self.enabled = enabled
        self._ids = itertools.count(1)
        self.spans_started = 0
        self.spans_emitted = 0

    # -- span lifecycle -----------------------------------------------------------

    def start(self, kind: str, name: str, t: float,
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span at simulated time ``t``."""
        if not self.enabled:
            return NULL_SPAN
        self.spans_started += 1
        parent_id = parent.span_id if parent is not None and parent is not NULL_SPAN else None
        return Span(next(self._ids), kind, name, t, parent_id=parent_id,
                    attrs=attrs)

    def end(self, span: Span, t: float, **attrs: Any) -> None:
        """Close ``span`` at simulated time ``t`` and emit it."""
        if not self.enabled or span is NULL_SPAN:
            return
        span.end = t
        if attrs:
            span.attrs.update(attrs)
        self.spans_emitted += 1
        self.sink.emit(span)

    def emit(self, kind: str, name: str, start: float, end: float,
             parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Record an already-finished interval (e.g. a completed flow)."""
        span = self.start(kind, name, start, parent=parent, **attrs)
        self.end(span, end)
        return span

    def event(self, name: str, t: float, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Record a zero-duration point event."""
        return self.emit("event", name, t, t, parent=parent, **attrs)


# -- reading span files -------------------------------------------------------------


def load_spans(source: Union[str, Iterable[str]],
               strict: bool = True) -> List[Span]:
    """Read spans back from a JSONL path (or iterable of lines).

    With ``strict=False`` damaged lines — a truncated tail from a file
    still being streamed, a torn write — are skipped (with one summary
    warning) instead of raising, so live readers degrade gracefully.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    if strict:
        return [Span.from_dict(json.loads(line))
                for line in lines if line.strip()]
    spans: List[Span] = []
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            skipped += 1
    if skipped:
        import warnings

        warnings.warn(f"span stream: skipped {skipped} unparseable "
                      f"line(s) (mid-write or torn tail)", stacklevel=2)
    return spans


def span_children(spans: Iterable[Span]) -> Dict[Optional[int], List[Span]]:
    """Group spans by parent id (children sorted by start time)."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for group in children.values():
        group.sort(key=lambda span: (span.start, span.span_id))
    return children
