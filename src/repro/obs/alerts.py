"""Alert rules over live telemetry: threshold, derivative and absence.

A rule watches one *signal* — either a probe series
(``"probe:net.link_utilisation_max"``) or a registry metric
(``"metric:sim.events_fired"``) — and declares when it is breached:

``threshold``
    the signal's current value compared against ``value`` with ``op``
    (``net.link_utilisation_max > 0.95``);
``derivative``
    the signal's rate of change compared against ``value``.  For probe
    series the slope is taken over the trailing ``window_s`` of
    *simulated* time using the samples' actual (possibly irregular)
    timestamps; for registry metrics it is the change between
    successive evaluations divided by the real evaluation gap;
``absence``
    fires when the signal has gone silent: a probe series with no
    sample in the last ``window_s``, or a metric that is not registered
    at all.

Rules are plain dicts (JSON-friendly)::

    {"name": "hot-links", "signal": "probe:net.link_utilisation_max",
     "type": "threshold", "op": ">", "value": 0.95, "for_s": 2.0}

``for_s`` debounces: the breach must hold continuously that long before
the rule transitions to *firing*.  The engine is edge-triggered — each
:meth:`AlertEngine.evaluate` returns only the firing/resolved
*transitions*, publishes them on the event broker (kind ``alert``) and
records them on the trace sink as zero-duration events, so alerts land
in the same ``/events`` stream and span files as everything else.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.probes import ProbeLog

RULE_TYPES = ("threshold", "derivative", "absence")

OPS = {">": operator.gt, ">=": operator.ge,
       "<": operator.lt, "<=": operator.le,
       "==": operator.eq, "!=": operator.ne}

_RULE_KEYS = {"name", "signal", "type", "op", "value", "window_s", "for_s"}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule (see module docstring for the schema)."""

    name: str
    signal: str                  # "probe:<series>" or "metric:<name>"
    type: str = "threshold"
    op: str = ">"
    value: float = 0.0
    window_s: float = 5.0        # derivative lookback / absence silence
    for_s: float = 0.0           # sustain duration before firing

    def __post_init__(self):
        if self.type not in RULE_TYPES:
            raise ValueError(f"rule {self.name!r}: unknown type "
                             f"{self.type!r} (want one of {RULE_TYPES})")
        if self.op not in OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r} "
                             f"(want one of {sorted(OPS)})")
        kind, _, rest = self.signal.partition(":")
        if kind not in ("probe", "metric") or not rest:
            raise ValueError(f"rule {self.name!r}: bad signal "
                             f"{self.signal!r} (want 'probe:<series>' or "
                             f"'metric:<name>')")
        if self.type in ("derivative", "absence") and self.window_s <= 0:
            raise ValueError(f"rule {self.name!r}: {self.type} rules need "
                             f"window_s > 0")
        if self.for_s < 0:
            raise ValueError(f"rule {self.name!r}: for_s must be >= 0")

    @property
    def signal_kind(self) -> str:
        return self.signal.partition(":")[0]

    @property
    def signal_name(self) -> str:
        return self.signal.partition(":")[2]

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "signal": self.signal, "type": self.type,
                "op": self.op, "value": self.value,
                "window_s": self.window_s, "for_s": self.for_s}


def parse_rule(data: Mapping[str, Any]) -> AlertRule:
    """Validate one rule dict (unknown keys are an error, not a typo trap)."""
    unknown = set(data) - _RULE_KEYS
    if unknown:
        raise ValueError(f"alert rule has unknown key(s) "
                         f"{sorted(unknown)}; known: {sorted(_RULE_KEYS)}")
    if "name" not in data or "signal" not in data:
        raise ValueError("alert rule needs at least 'name' and 'signal'")
    kwargs = dict(data)
    for key in ("value", "window_s", "for_s"):
        if key in kwargs:
            kwargs[key] = float(kwargs[key])
    return AlertRule(**kwargs)


def parse_rules(data: Union[Sequence[Any], Mapping[str, Any]]
                ) -> List[AlertRule]:
    """Rules from a JSON document: a list, or ``{"rules": [...]}``."""
    if isinstance(data, Mapping):
        data = data.get("rules", [])
    rules = [parse_rule(entry) for entry in data]
    names = [rule.name for rule in rules]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"duplicate alert rule name(s): {sorted(duplicates)}")
    return rules


def load_rules(path: Union[str, Path]) -> List[AlertRule]:
    """Rules from a JSON file (what ``--alerts rules.json`` points at)."""
    return parse_rules(json.loads(Path(path).read_text(encoding="utf-8")))


# -- evaluation ----------------------------------------------------------------------


def metric_value(metrics: Union[MetricsRegistry, Iterable[Dict[str, Any]],
                                None], name: str) -> Optional[float]:
    """A metric's value from a live registry *or* a snapshot list.

    Histograms read as their observation count.  Multiple label sets of
    the same name sum for counters/histograms and take the last write
    for gauges — the aggregate view a rule wants.  ``None`` when the
    metric is not present at all (that is what absence rules test).
    """
    if metrics is None:
        return None
    if isinstance(metrics, MetricsRegistry):
        metrics = metrics.snapshot()
    total: Optional[float] = None
    for entry in metrics:
        if entry["name"] != name:
            continue
        if entry["type"] == "histogram":
            value = float(entry["count"])
        else:
            value = float(entry["value"])
        if entry["type"] == "gauge":
            total = value                     # last write wins
        else:
            total = (total or 0.0) + value    # counters/histograms sum
    return total


@dataclass
class AlertState:
    """Mutable per-rule evaluation state."""

    firing: bool = False
    pending_since: Optional[float] = None  # breach observed, for_s not yet met
    since: Optional[float] = None          # firing since
    value: Optional[float] = None          # last evaluated signal value
    last_t: Optional[float] = None         # metric-derivative bookkeeping
    last_metric: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"firing": self.firing, "since": self.since,
                "value": self.value}


class AlertEngine:
    """Evaluates a rule set and emits firing/resolved transitions.

    ``broker`` (an :class:`~repro.obs.aggregate.EventBroker`) and
    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) are both optional;
    transitions are always returned and kept in :attr:`events` (bounded
    to the most recent ``history``).
    """

    def __init__(self, rules: Iterable[AlertRule], broker=None, tracer=None,
                 history: int = 256):
        self.rules = list(rules)
        self.broker = broker
        self.tracer = tracer
        self.states: Dict[str, AlertState] = {rule.name: AlertState()
                                              for rule in self.rules}
        self.events: List[Dict[str, Any]] = []
        self.evaluations = 0
        self._history = history

    def firing(self) -> List[str]:
        return sorted(name for name, state in self.states.items()
                      if state.firing)

    def to_dict(self) -> Dict[str, Any]:
        return {"rules": [rule.to_dict() for rule in self.rules],
                "states": {rule.name: self.states[rule.name].to_dict()
                           for rule in self.rules},
                "evaluations": self.evaluations,
                "events": list(self.events)}

    # -- one evaluation pass -------------------------------------------------------

    def evaluate(self, metrics=None, probes: Optional[ProbeLog] = None,
                 now: float = 0.0) -> List[Dict[str, Any]]:
        """Evaluate every rule at time ``now``; return the transitions.

        ``metrics`` is a live :class:`MetricsRegistry` or a snapshot
        list; ``probes`` a :class:`ProbeLog`.  ``now`` is the time the
        signals are measured in (simulated seconds for live runs and
        telemetry dirs alike) — derivative windows and ``for_s``
        debouncing are computed against it.
        """
        self.evaluations += 1
        transitions: List[Dict[str, Any]] = []
        for rule in self.rules:
            state = self.states[rule.name]
            breach, value = self._breached(rule, state, metrics, probes, now)
            state.value = value
            transition = self._advance(rule, state, breach, value, now)
            if transition is not None:
                transitions.append(transition)
        return transitions

    def _advance(self, rule: AlertRule, state: AlertState,
                 breach: Optional[bool], value: Optional[float],
                 now: float) -> Optional[Dict[str, Any]]:
        """Debounce + edge-detect one rule; emit on transition."""
        if breach is None:          # signal not evaluable this round
            return None
        if breach:
            if state.firing:
                return None
            if state.pending_since is None:
                state.pending_since = now
            if now - state.pending_since < rule.for_s:
                return None
            state.firing = True
            state.since = state.pending_since
            return self._emit(rule, "firing", value, now)
        state.pending_since = None
        if not state.firing:
            return None
        state.firing = False
        state.since = None
        return self._emit(rule, "resolved", value, now)

    def _emit(self, rule: AlertRule, status: str, value: Optional[float],
              now: float) -> Dict[str, Any]:
        event = {"rule": rule.name, "status": status, "signal": rule.signal,
                 "type": rule.type, "op": rule.op, "threshold": rule.value,
                 "value": value, "t": now}
        self.events.append(event)
        del self.events[:-self._history]
        if self.broker is not None:
            self.broker.publish("alert", **event)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(f"alert:{rule.name}", now, status=status,
                              signal=rule.signal, value=value,
                              threshold=rule.value)
        return event

    # -- signal maths --------------------------------------------------------------

    def _breached(self, rule: AlertRule, state: AlertState, metrics,
                  probes: Optional[ProbeLog], now: float):
        """(breach, value) for one rule; breach None = not evaluable."""
        compare = OPS[rule.op]
        if rule.signal_kind == "probe":
            series = (probes.series.get(rule.signal_name)
                      if probes is not None else None)
            if rule.type == "absence":
                if series is None or len(series) == 0:
                    return True, None
                silent = now - series.times[-1]
                return silent > rule.window_s, series.times[-1]
            if series is None or len(series) == 0:
                return None, None
            if rule.type == "threshold":
                value = series.values[-1]
                return compare(value, rule.value), value
            slope = _series_slope(series, now, rule.window_s)
            if slope is None:
                return None, None
            return compare(slope, rule.value), slope
        # metric:<name>
        value = metric_value(metrics, rule.signal_name)
        if rule.type == "absence":
            return value is None, value
        if value is None:
            return None, None
        if rule.type == "threshold":
            return compare(value, rule.value), value
        # metric derivative: change between successive evaluations.
        previous_t, previous_v = state.last_t, state.last_metric
        state.last_t, state.last_metric = now, value
        if previous_t is None or now <= previous_t:
            return None, None
        rate = (value - previous_v) / (now - previous_t)
        return compare(rate, rule.value), rate


def _series_slope(series, now: float, window_s: float) -> Optional[float]:
    """Rate of change over the trailing window of a probe series.

    Uses the first and last samples whose timestamps fall inside
    ``[now - window_s, now]`` — the samples' *actual* spacing divides,
    so irregular cadences (downsampled series, event-driven probes)
    produce correct rates.
    """
    horizon = now - window_s
    times, values = series.times, series.values
    first = None
    for index in range(len(times) - 1, -1, -1):
        if times[index] < horizon:
            break
        first = index
    if first is None or first == len(times) - 1:
        return None
    dt = times[-1] - times[first]
    if dt <= 0:
        return None
    return (values[-1] - values[first]) / dt
