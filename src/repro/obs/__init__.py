"""Unified telemetry: metrics registry, lifecycle tracing, probes.

The single facade the engine is instrumented through::

    from repro.obs import Telemetry

    telemetry = Telemetry.enabled_in_memory()
    cluster = HadoopCluster(spec, config, seed=1, telemetry=telemetry)
    cluster.run([make_job("terasort", input_gb=0.5)])
    telemetry.registry.value("net.flows_completed")
    telemetry.spans               # the job/stage/task/flow span tree
    telemetry.probes.series       # sampled utilisation/backlog series

Everything is disabled by default: an un-configured run keeps its
counters (they replaced the old ad-hoc perf dicts) but emits no spans,
schedules no probes and allocates no sinks.

The live-observability daemon (:class:`repro.obs.server.
ObservabilityServer` — ``keddah serve``) is deliberately *not*
re-exported here: importing it pulls in ``http.server``, which the
simulation hot path never needs.
"""

from repro.obs.aggregate import (
    AggregateRegistry,
    DeltaTracker,
    EventBroker,
    Subscription,
    delta_envelope,
    registry_delta,
)
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    load_rules,
    parse_rule,
    parse_rules,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probes import ClusterProbes, ProbeLog, ProbeSeries
from repro.obs.telemetry import (
    DEFAULT_PROBE_INTERVAL,
    Telemetry,
    TelemetryConfig,
)
from repro.obs.trace import (
    NULL_SINK,
    NULL_SPAN,
    SPAN_KINDS,
    FileSink,
    MemorySink,
    NullSink,
    Span,
    TraceSink,
    Tracer,
    load_spans,
    span_children,
)

__all__ = [
    "AggregateRegistry",
    "AlertEngine",
    "AlertRule",
    "DEFAULT_BUCKETS",
    "DEFAULT_PROBE_INTERVAL",
    "ClusterProbes",
    "Counter",
    "DeltaTracker",
    "EventBroker",
    "Subscription",
    "delta_envelope",
    "load_rules",
    "parse_rule",
    "parse_rules",
    "registry_delta",
    "FileSink",
    "Gauge",
    "Histogram",
    "MemorySink",
    "MetricsRegistry",
    "NULL_SINK",
    "NULL_SPAN",
    "NullSink",
    "ProbeLog",
    "ProbeSeries",
    "SPAN_KINDS",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "TraceSink",
    "Tracer",
    "load_spans",
    "span_children",
]
