"""The telemetry facade: one object bundling registry, tracer and probes.

Every instrumented component reaches its telemetry the same way — via
the simulator (``sim.telemetry``) or an explicit constructor argument —
so there is exactly one switch that decides whether a run is observed:

* **Disabled** (the default): the registry still works — it *is* the
  home of the engine's perf counters, replacing the old ad-hoc dicts —
  but the tracer is a no-op returning a shared null span, no sink
  exists, and no probe events are ever scheduled.  The overhead over
  the pre-telemetry engine is a handful of attribute reads, bounded in
  ``benchmarks/bench_telemetry_overhead.py``.
* **Enabled**: spans flow into the configured sink, and clusters start
  a :class:`~repro.obs.probes.ClusterProbes` sampler at
  ``probe_interval`` simulated seconds.

Enabling telemetry never changes simulation results: spans and probes
only *read* engine state, so capture traces are byte-identical either
way (pinned by the determinism tests).

:class:`TelemetryConfig` is the picklable recipe used to re-create an
equivalent telemetry in campaign worker processes; workers send their
registry snapshots back and the parent merges them
(:meth:`Telemetry.absorb`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import ProbeLog
from repro.obs.trace import (
    NULL_SINK,
    FileSink,
    MemorySink,
    TraceSink,
    Tracer,
)

#: Default probe cadence in simulated seconds.
DEFAULT_PROBE_INTERVAL = 1.0


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable telemetry recipe (what campaign workers receive).

    ``sink`` names a sink kind rather than carrying one: ``"null"``,
    ``"memory"`` or ``"file:<path>"``.  Workers default to ``"null"`` —
    span streams stay per-process; only registries travel back.
    """

    enabled: bool = False
    probe_interval: float = DEFAULT_PROBE_INTERVAL
    sink: str = "null"
    probe_max_samples: Optional[int] = None

    def build_sink(self) -> TraceSink:
        if not self.enabled or self.sink == "null":
            return NULL_SINK
        if self.sink == "memory":
            return MemorySink()
        if self.sink.startswith("file:"):
            return FileSink(self.sink[len("file:"):])
        raise ValueError(f"unknown sink spec {self.sink!r}")

    def build(self) -> "Telemetry":
        return Telemetry(enabled=self.enabled, sink=self.build_sink(),
                         probe_interval=self.probe_interval,
                         probe_max_samples=self.probe_max_samples)


class Telemetry:
    """Registry + tracer + probe log behind one enable switch."""

    def __init__(self, enabled: bool = False,
                 sink: Optional[TraceSink] = None,
                 probe_interval: float = DEFAULT_PROBE_INTERVAL,
                 registry: Optional[MetricsRegistry] = None,
                 probe_max_samples: Optional[int] = None):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        if sink is None:
            sink = MemorySink() if enabled else NULL_SINK
        self.sink = sink
        self.tracer = Tracer(sink=sink, enabled=enabled)
        self.probe_interval = probe_interval if enabled else 0.0
        self.probe_max_samples = probe_max_samples
        self.probes = ProbeLog(max_samples=probe_max_samples)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fresh null-path telemetry (what components get by default)."""
        return cls(enabled=False)

    @classmethod
    def enabled_in_memory(cls,
                          probe_interval: float = DEFAULT_PROBE_INTERVAL,
                          probe_max_samples: Optional[int] = None,
                          ) -> "Telemetry":
        """Telemetry capturing spans in memory (tests, reports)."""
        return cls(enabled=True, sink=MemorySink(),
                   probe_interval=probe_interval,
                   probe_max_samples=probe_max_samples)

    # -- campaign aggregation ------------------------------------------------------

    def config(self, sink: str = "null") -> TelemetryConfig:
        """The picklable recipe reproducing this telemetry's settings."""
        return TelemetryConfig(enabled=self.enabled,
                               probe_interval=self.probe_interval or
                               DEFAULT_PROBE_INTERVAL,
                               sink=sink,
                               probe_max_samples=self.probe_max_samples)

    def snapshot(self) -> Dict[str, Any]:
        """Picklable registry + tracer counters (what workers return)."""
        return {"metrics": self.registry.snapshot(),
                "spans_emitted": self.tracer.spans_emitted}

    def absorb(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Merge a worker's :meth:`snapshot` into this telemetry."""
        if not snapshot:
            return
        self.registry.merge(snapshot.get("metrics", ()))

    # -- convenience ---------------------------------------------------------------

    @property
    def spans(self):
        """Closed spans when the sink keeps them in memory, else []."""
        return getattr(self.sink, "spans", [])

    def close(self) -> None:
        """Flush/close the sink (file sinks need this)."""
        self.sink.close()
