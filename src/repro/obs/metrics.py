"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is the home of every counter the engine used to keep as
ad-hoc instance attributes (``Simulator.perf``, ``FlowNetwork.perf``,
the capture store's ``StoreStats``).  Components create their metrics
once at construction time and mutate plain ``value`` attributes on the
hot path, so instrumentation costs one attribute add — the old
``self.events_fired += 1`` in different clothes — while everything
becomes enumerable, exportable and mergeable across processes.

Design points:

* A metric's identity is ``(name, sorted labels)``.  ``counter()`` /
  ``gauge()`` / ``histogram()`` are get-or-create, so two components
  naming the same metric share one instrument.
* Gauges may be *callback* gauges (``gauge(name, fn=...)``): the value
  is read lazily from the component (heap size, active-flow count), so
  the hot path pays nothing at all.
* ``snapshot()`` produces a plain picklable list of dicts; ``merge()``
  folds such a snapshot back in (counters and histograms add, gauges
  take the incoming value).  The campaign runner uses this pair to
  aggregate per-worker registries back into the parent process.
* ``timeit(name)`` observes wall-clock seconds into a histogram — for
  host-side costs (store I/O, fit time), never simulated time.
"""

from __future__ import annotations

import time as _time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: wall-clock seconds from 100 microseconds to
#: ~2 minutes, roughly half-decade spaced.
DEFAULT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 15.0, 60.0, 120.0)


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value, set directly or read from a callback."""

    __slots__ = ("name", "labels", "_value", "fn")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = (),
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.fn = fn

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # counts[i] = observations <= buckets[i]; one overflow slot at the end.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # Smallest bound >= value; past the last bound -> overflow slot.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bound counts (``le`` semantics), plus +Inf."""
        total, out = 0, []
        for bucket_count in self.counts:
            total += bucket_count
            out.append(total)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "histogram", "name": self.name,
                "labels": dict(self.labels), "buckets": list(self.buckets),
                "counts": list(self.counts), "sum": self.sum,
                "count": self.count}


class MetricsRegistry:
    """Get-or-create home for a process's (or one cluster's) metrics."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, str, LabelsKey], Any] = {}

    # -- creation ---------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", Counter, name, labels)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels: Any) -> Gauge:
        gauge = self._get_or_create("gauge", Gauge, name, labels)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        key = ("histogram", name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[2], buckets=buckets)
            self._metrics[key] = metric
        return metric

    def _get_or_create(self, kind: str, cls, name: str,
                       labels: Dict[str, Any]):
        key = (kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[2])
            self._metrics[key] = metric
        return metric

    # -- observation ------------------------------------------------------------

    @contextmanager
    def timeit(self, name: str, **labels: Any):
        """Observe a wall-clock duration into ``histogram(name)``."""
        histogram = self.histogram(name, **labels)
        started = _time.perf_counter()
        try:
            yield histogram
        finally:
            histogram.observe(_time.perf_counter() - started)

    def metrics(self) -> List[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        return [self._metrics[key]
                for key in sorted(self._metrics,
                                  key=lambda k: (k[1], k[0], k[2]))]

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """Look up an instrument of any kind by name + labels."""
        wanted = _labels_key(labels)
        for (_, metric_name, labels_key), metric in self._metrics.items():
            if metric_name == name and labels_key == wanted:
                return metric
        return None

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: an instrument's value (0.0 when absent)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return float(metric.count)
        return float(metric.value)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / merge ---------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Plain-data (picklable) dump; callback gauges are evaluated."""
        return [metric.to_dict() for metric in self.metrics()]

    def merge(self, snapshot: Iterable[Dict[str, Any]]) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite.

        Callback gauges are left alone — their value belongs to a live
        component of *this* process, not to the snapshot's.
        """
        for entry in snapshot:
            labels = entry.get("labels", {})
            kind = entry["type"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(entry["name"], **labels)
                if gauge.fn is None:
                    gauge.set(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(entry["name"],
                                           buckets=entry["buckets"], **labels)
                if tuple(histogram.buckets) != tuple(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket mismatch on merge")
                for index, bucket_count in enumerate(entry["counts"]):
                    histogram.counts[index] += bucket_count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r}")
