"""The live observability daemon behind ``keddah serve``.

A stdlib :class:`~http.server.ThreadingHTTPServer` exposing one
telemetry *source* — either a live in-process :class:`~repro.obs.
telemetry.Telemetry` (``keddah campaign --serve-port N``) or a
telemetry directory on disk that may still be being written
(``keddah serve --telemetry DIR``):

==============  =====================================================
``/healthz``    JSON liveness: uptime, source kind, endpoint list
``/metrics``    Prometheus exposition text over the live registry
``/snapshot``   the registry as JSON (what ``keddah top`` renders)
``/probes``     probe series as JSON
``/spans``      closed spans as JSON (``?limit=N`` for the tail)
``/alerts``     rule set, per-rule state and recent transitions
``/events``     Server-Sent Events: campaign progress + alert stream
==============  =====================================================

``/events`` speaks standard SSE (``event:``/``data:`` frames, comment
keep-alives) so ``curl -N`` and any EventSource client work; the query
parameters ``replay=N`` (historical events first) and ``max=N`` (close
after N events — handy for scripts and tests) bound the stream.

The server never *mutates* telemetry: every endpoint is a read, the
evaluation loop only reads signals, and serving stays off unless asked
— the PR 3 contract (captures byte-identical, null path free) holds
with a daemon attached.
"""

from __future__ import annotations

import json
import threading
import time as _time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.aggregate import EventBroker
from repro.obs.alerts import AlertEngine
from repro.obs.export import load_telemetry_dir, prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import ProbeLog
from repro.obs.telemetry import Telemetry

ENDPOINTS = ("/healthz", "/metrics", "/snapshot", "/probes", "/spans",
             "/alerts", "/events")

#: How long an /events handler waits on its queue before emitting a
#: keep-alive comment and re-checking the shutdown flag (seconds).
_EVENT_POLL_S = 0.25


# -- telemetry sources ---------------------------------------------------------------


class LiveSource:
    """Serves a live, in-process :class:`Telemetry` (campaign mode).

    Reads are safe against the simulating thread: registry enumeration
    copies the metric table atomically under the GIL, and probe series
    only ever append.  A metric read mid-update can be one increment
    stale — fine for monitoring, and nothing here writes back.
    """

    kind = "live"

    def __init__(self, telemetry: Telemetry):
        self.telemetry = telemetry

    def refresh(self) -> None:  # live state needs no reloading
        pass

    @property
    def registry(self) -> MetricsRegistry:
        return self.telemetry.registry

    def metrics_snapshot(self) -> List[Dict[str, Any]]:
        return self.telemetry.registry.snapshot()

    def prometheus(self) -> str:
        return prometheus_text(self.telemetry.registry)

    def probes(self) -> ProbeLog:
        return self.telemetry.probes

    def spans(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.telemetry.spans]

    def now(self) -> float:
        """Latest simulated time any probe has seen (alert clock)."""
        latest = 0.0
        for series in self.telemetry.probes.series.values():
            if series.times:
                latest = max(latest, series.times[-1])
        return latest

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "metrics": len(self.telemetry.registry),
                "probe_series": len(self.telemetry.probes.series)}


class DirSource:
    """Serves a telemetry directory, reloading as the artefacts change.

    The directory may be mid-write (a campaign streaming artefacts):
    loading goes through the tolerant :func:`load_telemetry_dir`, so a
    missing ``probes.json`` or a truncated ``spans.jsonl`` degrades to
    empty rather than a 500.

    A *pipeline* directory (``keddah pipeline --dir DIR``: has a
    ``nodes/`` of per-stage dirs, or a ``pipeline.json`` spec) is
    recognised automatically: every node's ``telemetry/`` subdir is
    aggregated, node metrics gain a ``node=<name>`` label and node
    probe series are prefixed ``<name>/``, so ``keddah top DIR`` and
    ``keddah serve`` work on a pipeline root out of the box.
    """

    def __init__(self, directory):
        self.root = Path(directory)
        self._lock = threading.Lock()
        self._fingerprint: Any = None
        self._metrics: List[Dict[str, Any]] = []
        self._probes = ProbeLog()
        self._spans: List[Dict[str, Any]] = []
        self.reloads = 0
        self.refresh()

    @property
    def kind(self) -> str:
        return "pipeline-dir" if self._is_pipeline() else "dir"

    def _is_pipeline(self) -> bool:
        return ((self.root / "nodes").is_dir()
                or (self.root / "pipeline.json").is_file())

    def _telemetry_dirs(self) -> List[Any]:
        """(node label, directory) pairs to aggregate; label None = root.

        A plain telemetry directory is just ``[(None, root)]``; a
        pipeline root contributes its optional run-level ``telemetry/``
        plus every ``nodes/<name>@<sig>/telemetry/`` dir, labelled by
        the node name (the part before ``@``).
        """
        if not self._is_pipeline():
            return [(None, self.root)]
        dirs: List[Any] = [(None, self.root / "telemetry")]
        nodes_dir = self.root / "nodes"
        if nodes_dir.is_dir():
            for node_dir in sorted(nodes_dir.iterdir()):
                telemetry_dir = node_dir / "telemetry"
                if telemetry_dir.is_dir():
                    dirs.append((node_dir.name.split("@", 1)[0],
                                 telemetry_dir))
        return dirs

    def _stat_fingerprint(self) -> Any:
        parts = []
        for label, directory in self._telemetry_dirs():
            for name in ("metrics.json", "metrics.prom", "probes.json",
                         "spans.jsonl"):
                path = directory / name
                try:
                    stat = path.stat()
                    parts.append((label, name, stat.st_mtime_ns,
                                  stat.st_size))
                except OSError:
                    parts.append((label, name, None, None))
        return tuple(parts)

    def refresh(self) -> None:
        fingerprint = self._stat_fingerprint()
        with self._lock:
            if fingerprint == self._fingerprint:
                return
            metrics: List[Dict[str, Any]] = []
            probes = ProbeLog()
            spans: List[Dict[str, Any]] = []
            for label, directory in self._telemetry_dirs():
                if not directory.is_dir():
                    continue
                loaded_metrics, loaded_probes, loaded_spans = (
                    load_telemetry_dir(directory))
                if label is None:
                    metrics.extend(loaded_metrics)
                else:
                    for entry in loaded_metrics:
                        entry = dict(entry)
                        entry["labels"] = dict(entry.get("labels") or {},
                                               node=label)
                        metrics.append(entry)
                for name, series in loaded_probes.series.items():
                    key = name if label is None else f"{label}/{name}"
                    probes.series[key] = series
                spans.extend(span.to_dict() for span in loaded_spans)
            self._metrics = metrics
            self._probes = probes
            self._spans = spans
            self._fingerprint = fingerprint
            self.reloads += 1

    def metrics_snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._metrics)

    def prometheus(self) -> str:
        registry = MetricsRegistry()
        registry.merge(self.metrics_snapshot())
        return prometheus_text(registry)

    def probes(self) -> ProbeLog:
        with self._lock:
            return self._probes

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def now(self) -> float:
        probes = self.probes()
        latest = 0.0
        for series in probes.series.values():
            if series.times:
                latest = max(latest, series.times[-1])
        return latest

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "directory": str(self.root),
                "reloads": self.reloads,
                "metrics": len(self.metrics_snapshot()),
                "probe_series": len(self.probes().series)}


# -- the server ----------------------------------------------------------------------


class ObservabilityServer:
    """HTTP daemon over a telemetry source, with alert evaluation.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`).  :meth:`start` spawns the accept loop and — when an
    :class:`AlertEngine` is attached — an evaluation loop that
    refreshes the source and evaluates the rules every
    ``alert_interval`` wall seconds, publishing transitions on the
    broker.  :meth:`stop` shuts both down; the object is also a context
    manager.
    """

    def __init__(self, source, broker: Optional[EventBroker] = None,
                 engine: Optional[AlertEngine] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 alert_interval: float = 1.0):
        self.source = source
        self.broker = broker if broker is not None else EventBroker()
        self.engine = engine
        self.alert_interval = alert_interval
        self.started_wall = _time.time()
        self.requests_served = 0
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        accept = threading.Thread(target=self._httpd.serve_forever,
                                  kwargs={"poll_interval": 0.1},
                                  name="keddah-serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        if self.engine is not None and self.alert_interval > 0:
            loop = threading.Thread(target=self._evaluate_loop,
                                    name="keddah-serve-alerts", daemon=True)
            loop.start()
            self._threads.append(loop)
        return self

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- alert loop ----------------------------------------------------------------

    def _evaluate_loop(self) -> None:
        while not self._stopping.wait(self.alert_interval):
            self.evaluate_once()

    def evaluate_once(self) -> List[Dict[str, Any]]:
        """Refresh the source and run one alert evaluation pass."""
        self.source.refresh()
        if self.engine is None:
            return []
        return self.engine.evaluate(metrics=self.source.metrics_snapshot(),
                                    probes=self.source.probes(),
                                    now=self.source.now())

    # -- payload builders (one per endpoint) ---------------------------------------

    def payload_healthz(self) -> Dict[str, Any]:
        return {"status": "ok",
                "uptime_s": round(_time.time() - self.started_wall, 3),
                "source": self.source.describe(),
                "requests_served": self.requests_served,
                "events_published": self.broker.published,
                "alerts_firing": (self.engine.firing()
                                  if self.engine is not None else []),
                "endpoints": list(ENDPOINTS)}

    def payload_alerts(self) -> Dict[str, Any]:
        if self.engine is None:
            return {"rules": [], "states": {}, "events": [],
                    "evaluations": 0}
        return self.engine.to_dict()


def _make_handler(server: ObservabilityServer):
    """A request-handler class closed over one ObservabilityServer."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "keddah-serve"

        def log_message(self, *args):  # no access-log noise on stderr
            pass

        # -- plumbing --------------------------------------------------------------

        def _send(self, body: bytes, content_type: str,
                  status: int = 200) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, payload: Any, status: int = 200) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self._send(body, "application/json; charset=utf-8", status)

        # -- routing ---------------------------------------------------------------

        def do_GET(self) -> None:
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            query = parse_qs(parsed.query)
            server.requests_served += 1
            try:
                server.source.refresh()
                if route == "/healthz" or route == "/":
                    self._send_json(server.payload_healthz())
                elif route == "/metrics":
                    self._send(server.source.prometheus().encode("utf-8"),
                               "text/plain; version=0.0.4; charset=utf-8")
                elif route == "/snapshot":
                    self._send_json(server.source.metrics_snapshot())
                elif route == "/probes":
                    self._send_json(server.source.probes().to_dict())
                elif route == "/spans":
                    spans = server.source.spans()
                    limit = _int_param(query, "limit")
                    if limit is not None:
                        spans = spans[-limit:]
                    self._send_json(spans)
                elif route == "/alerts":
                    self._send_json(server.payload_alerts())
                elif route == "/events":
                    self._stream_events(query)
                else:
                    self._send_json({"error": f"no such endpoint {route!r}",
                                     "endpoints": list(ENDPOINTS)},
                                    status=404)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response

        # -- SSE -------------------------------------------------------------------

        def _stream_events(self, query: Dict[str, List[str]]) -> None:
            replay = _int_param(query, "replay")
            maximum = _int_param(query, "max")
            if replay is None:
                replay = len(server.broker.history)
            subscription = server.broker.subscribe(replay=replay)
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            sent = 0
            try:
                self.wfile.write(b": keddah event stream\n\n")
                self.wfile.flush()
                while not server._stopping.is_set():
                    if maximum is not None and sent >= maximum:
                        break
                    event = subscription.get(timeout=_EVENT_POLL_S)
                    if event is None:
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                        continue
                    frame = (f"event: {event.get('kind', 'message')}\n"
                             f"id: {event.get('seq', 0)}\n"
                             f"data: {json.dumps(event, sort_keys=True)}\n\n")
                    self.wfile.write(frame.encode("utf-8"))
                    self.wfile.flush()
                    sent += 1
            except (BrokenPipeError, ConnectionResetError):
                pass
            finally:
                subscription.close()
                self.close_connection = True

    return Handler


def _int_param(query: Dict[str, List[str]], name: str) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return max(0, int(values[-1]))
    except ValueError:
        return None


# -- convenience constructors --------------------------------------------------------


def serve_telemetry(telemetry: Telemetry, port: int = 0,
                    host: str = "127.0.0.1",
                    broker: Optional[EventBroker] = None,
                    engine: Optional[AlertEngine] = None,
                    alert_interval: float = 1.0) -> ObservabilityServer:
    """A started server over a live Telemetry (campaign attach mode)."""
    server = ObservabilityServer(LiveSource(telemetry), broker=broker,
                                 engine=engine, host=host, port=port,
                                 alert_interval=alert_interval)
    return server.start()


def serve_directory(directory, port: int = 0, host: str = "127.0.0.1",
                    broker: Optional[EventBroker] = None,
                    engine: Optional[AlertEngine] = None,
                    alert_interval: float = 1.0) -> ObservabilityServer:
    """A started server over a telemetry directory (standalone mode)."""
    server = ObservabilityServer(DirSource(directory), broker=broker,
                                 engine=engine, host=host, port=port,
                                 alert_interval=alert_interval)
    return server.start()
