"""Mergeable registries and live event fan-out for ``keddah serve``.

Campaign workers used to ship one full registry snapshot per completed
point, and the parent folded it in with ``Telemetry.absorb`` — fine for
an end-of-run report, useless for a live view: a re-delivered snapshot
double-counts, and two workers' gauges overwrite each other blindly.
This module is the aggregation layer the serve daemon stands on:

* :func:`registry_delta` / :class:`DeltaTracker` — turn a registry into
  *incremental* deltas (what changed since the last shipment), so a
  long-lived worker can stream updates instead of ever-growing
  snapshots;
* :class:`AggregateRegistry` — the parent-side merge target.  Counters
  and histogram buckets **add**, gauges are **last-write-wins under a
  ``worker`` label** (each source keeps its own gauge series), and every
  delta carries a ``(source, delta_id)`` identity so re-delivery — a
  retried future, a replayed journal — is idempotent;
* :class:`EventBroker` — a tiny in-process pub/sub hub with a bounded
  replay buffer.  The campaign runner publishes per-point progress, the
  alert engine publishes firing/resolved transitions, and the server's
  ``/events`` endpoint streams both to any number of subscribers.

Everything here is thread-safe by construction: the serve daemon's
handler threads read while the campaign thread writes.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time as _time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Label attached to worker gauges by :class:`AggregateRegistry`.
WORKER_LABEL = "worker"


# -- delta computation (worker side) -------------------------------------------------


def _entry_key(entry: Dict[str, Any]) -> Tuple[str, str, Tuple[Tuple[str, str], ...]]:
    labels = entry.get("labels") or {}
    return (entry["type"], entry["name"],
            tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def registry_delta(previous: Iterable[Dict[str, Any]],
                   current: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Snapshot entries representing ``current - previous``.

    Counters carry the value increase (entries that did not move are
    dropped); histograms carry per-bucket count increases plus the
    sum/count increase; gauges always pass through their current value
    (a gauge's delta *is* its level).  Metrics absent from ``previous``
    appear whole.
    """
    before = {_entry_key(entry): entry for entry in previous}
    delta: List[Dict[str, Any]] = []
    for entry in current:
        prior = before.get(_entry_key(entry))
        if prior is None:
            if entry["type"] != "counter" or entry["value"]:
                delta.append(dict(entry))
            continue
        if entry["type"] == "counter":
            moved = entry["value"] - prior["value"]
            if moved:
                changed = dict(entry)
                changed["value"] = moved
                delta.append(changed)
        elif entry["type"] == "gauge":
            delta.append(dict(entry))
        else:  # histogram
            counts = [now - then for now, then
                      in zip(entry["counts"], prior["counts"])]
            if any(counts):
                changed = dict(entry)
                changed["counts"] = counts
                changed["sum"] = entry["sum"] - prior["sum"]
                changed["count"] = entry["count"] - prior["count"]
                delta.append(changed)
    return delta


class DeltaTracker:
    """Produces successive delta envelopes for one registry.

    Each call to :meth:`delta` returns everything that changed since the
    previous call, wrapped in an envelope carrying the tracker's
    ``source`` name and a monotonically increasing per-source ``seq``
    (which doubles as the delta id for idempotent re-delivery).
    """

    def __init__(self, registry: MetricsRegistry, source: str):
        self.registry = registry
        self.source = source
        self._previous: List[Dict[str, Any]] = []
        self._seq = 0

    def delta(self, **extra: Any) -> Dict[str, Any]:
        current = self.registry.snapshot()
        entries = registry_delta(self._previous, current)
        self._previous = current
        self._seq += 1
        envelope = {"source": self.source, "delta_id": f"seq-{self._seq}",
                    "metrics": entries}
        envelope.update(extra)
        return envelope


def delta_envelope(registry: MetricsRegistry, source: str, delta_id: str,
                   **extra: Any) -> Dict[str, Any]:
    """One-shot envelope: a whole registry as a single identified delta.

    This is what campaign workers ship — their telemetry is fresh per
    point, so the full snapshot *is* the increment; ``delta_id`` (the
    point's content hash) makes re-delivery of the same completed point
    a no-op on the aggregate side.
    """
    envelope = {"source": source, "delta_id": delta_id,
                "metrics": registry.snapshot()}
    envelope.update(extra)
    return envelope


# -- the merge target (parent side) --------------------------------------------------


class AggregateRegistry:
    """Thread-safe, idempotent merge target for delta envelopes.

    Merge semantics, per metric kind:

    ============  ==================================================
    counter       values **sum** across sources (cluster-wide total)
    gauge         **last write wins within a source**; each source's
                  value lands on its own ``worker=<source>`` series,
                  so sources never clobber each other
    histogram     per-bucket counts, sum and count **add**
    ============  ==================================================

    An envelope is ``{"source": str, "delta_id": str, "metrics": [...]}``
    (:func:`delta_envelope` / :class:`DeltaTracker` build them).  The
    ``(source, delta_id)`` pair identifies the delta: applying the same
    pair twice counts once — the runner may re-deliver a completion
    after a pool collapse, and a resumed journal replays points the
    aggregate has already seen.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lock = threading.RLock()
        self._applied: Dict[str, set] = {}
        self.deltas_applied = 0
        self.duplicates_dropped = 0

    def apply(self, envelope: Optional[Dict[str, Any]]) -> bool:
        """Fold one envelope in; False when it was a duplicate (or None)."""
        if not envelope:
            return False
        source = str(envelope.get("source", "local"))
        delta_id = envelope.get("delta_id")
        with self.lock:
            if delta_id is not None:
                seen = self._applied.setdefault(source, set())
                if delta_id in seen:
                    self.duplicates_dropped += 1
                    return False
                seen.add(delta_id)
            for entry in envelope.get("metrics", ()):
                self._merge_entry(source, entry)
            self.deltas_applied += 1
        return True

    def _merge_entry(self, source: str, entry: Dict[str, Any]) -> None:
        labels = dict(entry.get("labels") or {})
        kind = entry["type"]
        registry = self.registry
        if kind == "counter":
            registry.counter(entry["name"], **labels).inc(entry["value"])
        elif kind == "gauge":
            labels[WORKER_LABEL] = source
            gauge = registry.gauge(entry["name"], **labels)
            if gauge.fn is None:
                gauge.set(entry["value"])
        elif kind == "histogram":
            histogram = registry.histogram(entry["name"],
                                           buckets=entry["buckets"], **labels)
            if tuple(histogram.buckets) != tuple(entry["buckets"]):
                raise ValueError(f"histogram {entry['name']!r} bucket "
                                 f"mismatch on aggregate merge")
            for index, count in enumerate(entry["counts"]):
                histogram.counts[index] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]
        else:
            raise ValueError(f"unknown metric type {kind!r}")

    def sources(self) -> List[str]:
        with self.lock:
            return sorted(self._applied)

    def stats(self) -> Dict[str, int]:
        with self.lock:
            return {"sources": len(self._applied),
                    "deltas_applied": self.deltas_applied,
                    "duplicates_dropped": self.duplicates_dropped}


# -- event fan-out -------------------------------------------------------------------


class Subscription:
    """One subscriber's bounded event queue (close to stop receiving)."""

    def __init__(self, broker: "EventBroker", capacity: int):
        self._broker = broker
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(capacity)
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Dict[str, Any]) -> None:
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1  # slow consumer: shed, never block the publisher

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next event, or None on timeout / after close drained."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self.closed = True
        self._broker._drop(self)


class EventBroker:
    """In-process pub/sub with a bounded replay history.

    Publishers (:class:`~repro.experiments.runner.CampaignRunner`
    progress, :class:`~repro.obs.alerts.AlertEngine` transitions) call
    :meth:`publish`; the serve daemon's ``/events`` handler calls
    :meth:`subscribe` per connection.  History lets a late subscriber
    see recent events (``replay``) without the broker ever growing
    unboundedly.
    """

    def __init__(self, history: int = 256, subscriber_capacity: int = 1024):
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._subscribers: List[Subscription] = []
        self._capacity = subscriber_capacity
        self.history: "deque[Dict[str, Any]]" = deque(maxlen=history)
        self.published = 0

    def publish(self, kind: str, **payload: Any) -> Dict[str, Any]:
        event = {"seq": next(self._ids), "kind": kind,
                 "wall": _time.time()}
        event.update(payload)
        with self._lock:
            self.history.append(event)
            self.published += 1
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            subscription._offer(event)
        return event

    def subscribe(self, replay: int = 0) -> Subscription:
        """A new subscription, pre-loaded with the last ``replay`` events."""
        subscription = Subscription(self, self._capacity)
        with self._lock:
            backlog = list(self.history)[-replay:] if replay else []
            self._subscribers.append(subscription)
        for event in backlog:
            subscription._offer(event)
        return subscription

    def _drop(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)
