"""Periodic probes: time series sampled from a live cluster simulation.

Counters say *how much* happened; probes say *when*.  A
:class:`ClusterProbes` instance schedules a repeating sim event (every
``interval`` simulated seconds) that samples read-only signals from the
running cluster into :class:`ProbeSeries`:

* ``net.active_flows``      — flows currently in the fluid network,
* ``net.throughput_gbps``   — aggregate instantaneous rate of those flows,
* ``net.link_utilisation_mean`` / ``_max`` — mean/max utilisation since
  t=0 over every link that has carried traffic,
* ``sim.backlog``           — pending (non-cancelled) events in the heap,
* ``yarn.queue_depth``      — containers wanted but not yet granted,
  summed over registered applications.

Sampling is strictly read-only, so enabling probes cannot perturb flow
behaviour: capture traces stay byte-identical with probes on or off
(the determinism tests pin this).  The probe loop is started by
``HadoopCluster.start`` when telemetry is enabled and stopped by
``HadoopCluster.stop`` so the event queue can drain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cluster import HadoopCluster


class ProbeSeries:
    """One sampled time series: parallel (time, value) lists."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def peak_time(self) -> float:
        if not self.values:
            return 0.0
        return self.times[self.values.index(max(self.values))]

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "t": list(self.times),
                "v": list(self.values)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProbeSeries":
        series = cls(data["name"])
        for t, value in zip(data["t"], data["v"]):
            series.append(float(t), float(value))
        return series


class ProbeLog:
    """Named collection of probe series (what ``Telemetry`` carries)."""

    def __init__(self):
        self.series: Dict[str, ProbeSeries] = {}

    def get(self, name: str) -> ProbeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = ProbeSeries(name)
        return series

    def sample(self, name: str, t: float, value: float) -> None:
        self.get(name).append(t, value)

    def __len__(self) -> int:
        return len(self.series)

    def total_samples(self) -> int:
        return sum(len(series) for series in self.series.values())

    def to_dict(self) -> Dict[str, Any]:
        return {name: series.to_dict()
                for name, series in sorted(self.series.items())}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProbeLog":
        log = cls()
        for name, series in data.items():
            log.series[name] = ProbeSeries.from_dict(series)
        return log


class ClusterProbes:
    """The repeating sampler bound to one :class:`HadoopCluster`."""

    def __init__(self, cluster: "HadoopCluster", interval: float,
                 log: Optional[ProbeLog] = None):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.cluster = cluster
        self.interval = interval
        self.log = log if log is not None else ProbeLog()
        self.samples_taken = 0
        self._event = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sample()  # t=0 baseline, then every ``interval``

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        if not self._running:
            return
        cluster = self.cluster
        sim, net, rm = cluster.sim, cluster.net, cluster.rm
        now = sim.now
        log = self.log
        log.sample("net.active_flows", now, len(net.active))
        log.sample("net.throughput_gbps", now, net.throughput_gbps())
        utilisations = [net.utilisation(link) for link in net._capacities]
        if utilisations:
            log.sample("net.link_utilisation_mean", now,
                       sum(utilisations) / len(utilisations))
            log.sample("net.link_utilisation_max", now, max(utilisations))
        else:
            log.sample("net.link_utilisation_mean", now, 0.0)
            log.sample("net.link_utilisation_max", now, 0.0)
        log.sample("sim.backlog", now, sim.pending())
        log.sample("yarn.queue_depth", now,
                   sum(app.pending_count() for app in rm.apps.values()))
        self.samples_taken += 1
        self._event = sim.schedule(self.interval, self._sample)
