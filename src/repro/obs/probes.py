"""Periodic probes: time series sampled from a live cluster simulation.

Counters say *how much* happened; probes say *when*.  A
:class:`ClusterProbes` instance schedules a repeating sim event (every
``interval`` simulated seconds) that samples read-only signals from the
running cluster into :class:`ProbeSeries`:

* ``net.active_flows``      — flows currently in the fluid network,
* ``net.throughput_gbps``   — aggregate instantaneous rate of those flows,
* ``net.link_utilisation_mean`` / ``_max`` — mean/max utilisation since
  t=0 over every link that has carried traffic,
* ``sim.backlog``           — pending (non-cancelled) events in the heap,
* ``yarn.queue_depth``      — containers wanted but not yet granted,
  summed over registered applications.

Sampling is strictly read-only, so enabling probes cannot perturb flow
behaviour: capture traces stay byte-identical with probes on or off
(the determinism tests pin this).  The probe loop is started by
``HadoopCluster.start`` when telemetry is enabled and stopped by
``HadoopCluster.stop`` so the event queue can drain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cluster import HadoopCluster


class ProbeSeries:
    """One sampled time series: parallel (time, value) lists.

    ``max_samples`` bounds memory for long-running serves: when the
    kept lists would exceed it, every other kept sample is dropped and
    the keep stride doubles (1, 2, 4, ...), so the series always holds
    at most ``max_samples`` evenly thinned points regardless of run
    length — and which samples survive depends only on their arrival
    index, never on timing.  The summary statistics stay **exact**:
    ``mean``/``peak``/``peak_time`` are maintained incrementally over
    every appended sample, including the thinned-out ones.
    """

    __slots__ = ("name", "times", "values", "max_samples", "_stride",
                 "_seen", "_sum", "_peak", "_peak_time")

    def __init__(self, name: str, max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_samples = max_samples
        self._stride = 1
        self._seen = 0
        self._sum = 0.0
        self._peak: Optional[float] = None
        self._peak_time = 0.0

    def append(self, t: float, value: float) -> None:
        value = float(value)
        index = self._seen
        self._seen += 1
        self._sum += value
        if self._peak is None or value > self._peak:
            self._peak = value
            self._peak_time = t
        if index % self._stride:
            return
        self.times.append(t)
        self.values.append(value)
        if self.max_samples is not None and len(self.times) > self.max_samples:
            # Stride-doubling downsample: keep every other kept sample.
            # Kept indices stay exactly {i : i % stride == 0}, so the
            # retained set is a pure function of the arrival indices.
            self.times = self.times[::2]
            self.values = self.values[::2]
            self._stride *= 2

    def __len__(self) -> int:
        return len(self.times)

    @property
    def samples_seen(self) -> int:
        """Total samples ever appended (>= len() once downsampling hits)."""
        return self._seen

    @property
    def stride(self) -> int:
        """Current keep stride (1 until ``max_samples`` forces thinning)."""
        return self._stride

    @property
    def mean(self) -> float:
        return self._sum / self._seen if self._seen else 0.0

    @property
    def peak(self) -> float:
        return self._peak if self._peak is not None else 0.0

    @property
    def peak_time(self) -> float:
        return self._peak_time if self._peak is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "t": list(self.times),
                                "v": list(self.values)}
        if self.max_samples is not None:
            # Exact aggregates survive the round-trip even though some
            # raw samples were thinned away.  (Unbounded series keep
            # the historical two-list format byte-for-byte.)
            data["agg"] = {"seen": self._seen, "sum": self._sum,
                           "peak": self.peak, "peak_time": self._peak_time,
                           "stride": self._stride,
                           "max_samples": self.max_samples}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProbeSeries":
        agg = data.get("agg")
        series = cls(data["name"],
                     max_samples=agg.get("max_samples") if agg else None)
        series.times = [float(t) for t in data["t"]]
        series.values = [float(v) for v in data["v"]]
        if agg:
            series._seen = int(agg["seen"])
            series._sum = float(agg["sum"])
            series._peak = float(agg["peak"]) if series._seen else None
            series._peak_time = float(agg["peak_time"])
            series._stride = int(agg.get("stride", 1))
        else:
            series._seen = len(series.values)
            series._sum = sum(series.values)
            if series.values:
                series._peak = max(series.values)
                series._peak_time = series.times[
                    series.values.index(series._peak)]
        return series


class ProbeLog:
    """Named collection of probe series (what ``Telemetry`` carries).

    ``max_samples`` (optional) is inherited by every series the log
    creates — the memory bound for a days-long serve daemon.
    """

    def __init__(self, max_samples: Optional[int] = None):
        self.series: Dict[str, ProbeSeries] = {}
        self.max_samples = max_samples

    def get(self, name: str) -> ProbeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = ProbeSeries(
                name, max_samples=self.max_samples)
        return series

    def sample(self, name: str, t: float, value: float) -> None:
        self.get(name).append(t, value)

    def __len__(self) -> int:
        return len(self.series)

    def total_samples(self) -> int:
        return sum(len(series) for series in self.series.values())

    def to_dict(self) -> Dict[str, Any]:
        return {name: series.to_dict()
                for name, series in sorted(self.series.items())}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProbeLog":
        log = cls()
        for name, series in data.items():
            log.series[name] = ProbeSeries.from_dict(series)
        return log


class ClusterProbes:
    """The repeating sampler bound to one :class:`HadoopCluster`."""

    def __init__(self, cluster: "HadoopCluster", interval: float,
                 log: Optional[ProbeLog] = None):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.cluster = cluster
        self.interval = interval
        self.log = log if log is not None else ProbeLog()
        self.samples_taken = 0
        self._event = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sample()  # t=0 baseline, then every ``interval``

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        if not self._running:
            return
        cluster = self.cluster
        sim, net, rm = cluster.sim, cluster.net, cluster.rm
        now = sim.now
        log = self.log
        log.sample("net.active_flows", now, len(net.active))
        log.sample("net.throughput_gbps", now, net.throughput_gbps())
        utilisations = [net.utilisation(link) for link in net._capacities]
        if utilisations:
            log.sample("net.link_utilisation_mean", now,
                       sum(utilisations) / len(utilisations))
            log.sample("net.link_utilisation_max", now, max(utilisations))
        else:
            log.sample("net.link_utilisation_mean", now, 0.0)
            log.sample("net.link_utilisation_max", now, 0.0)
        log.sample("sim.backlog", now, sim.pending())
        log.sample("yarn.queue_depth", now,
                   sum(app.pending_count() for app in rm.apps.values()))
        self.samples_taken += 1
        self._event = sim.schedule(self.interval, self._sample)
