"""Telemetry exporters: Prometheus text, JSON artefacts, human tables.

Three audiences:

* machines scraping — :func:`prometheus_text` renders the registry in
  the Prometheus exposition format (metric names sanitised, labels
  preserved);
* files on disk — :func:`write_telemetry` drops a directory of
  ``metrics.json`` / ``metrics.prom`` / ``probes.json`` /
  ``spans.jsonl`` artefacts, and :func:`load_telemetry_dir` reads them
  back;
* humans — ``*_table`` builders return :class:`~repro.analysis.tables.
  Table` rows rendered by ``keddah report`` and ``keddah trace``.
"""

from __future__ import annotations

import json
import re
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.probes import ProbeLog
from repro.obs.telemetry import Telemetry
from repro.obs.trace import MemorySink, Span, load_spans, span_children

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

METRICS_JSON = "metrics.json"
METRICS_PROM = "metrics.prom"
PROBES_JSON = "probes.json"
SPANS_JSONL = "spans.jsonl"


# -- Prometheus text format ----------------------------------------------------------


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the Prometheus exposition format spec:
    backslash, double-quote and newline must be escaped inside the
    quoted value (everything else passes through verbatim)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP-text escaping: backslash and newline only (no quotes)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()
                 ) -> str:
    items = list(labels.items()) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{_prom_name(key)}="{_escape_label_value(value)}"'
                    for key, value in items)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry,
                    help_texts: Optional[Dict[str, str]] = None) -> str:
    """The registry in Prometheus exposition format (text, UTF-8).

    Every metric family gets a ``# HELP`` and ``# TYPE`` header —
    gauges included — and label values are escaped per the exposition
    spec.  ``help_texts`` (dotted metric name -> description) overrides
    the default help line.
    """
    lines: List[str] = []
    seen_types: set = set()
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if name not in seen_types:
            help_text = (help_texts or {}).get(
                metric.name, f"keddah metric {metric.name}")
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            seen_types.add(name)
        labels = dict(metric.labels)
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            bounds = [str(bound) for bound in metric.buckets] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                lines.append(f"{name}_bucket"
                             f"{_prom_labels(labels, (('le', bound),))} {count}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {metric.sum}")
            lines.append(f"{name}_count{_prom_labels(labels)} {metric.count}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {metric.value}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- file artefacts ------------------------------------------------------------------


def write_telemetry(telemetry: Telemetry, directory: str | Path) -> List[Path]:
    """Write a telemetry directory; returns the paths written.

    Spans are written only when the sink kept them in memory — a
    :class:`FileSink` has already streamed its own JSONL file.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = []

    metrics_path = root / METRICS_JSON
    metrics_path.write_text(
        json.dumps(telemetry.registry.snapshot(), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
    paths.append(metrics_path)

    prom_path = root / METRICS_PROM
    prom_path.write_text(prometheus_text(telemetry.registry),
                         encoding="utf-8")
    paths.append(prom_path)

    probes_path = root / PROBES_JSON
    probes_path.write_text(
        json.dumps(telemetry.probes.to_dict(), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
    paths.append(probes_path)

    if isinstance(telemetry.sink, MemorySink):
        spans_path = root / SPANS_JSONL
        with open(spans_path, "w", encoding="utf-8") as handle:
            for span in telemetry.sink.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        paths.append(spans_path)
    return paths


def load_telemetry_dir(directory: str | Path, strict: bool = False
                       ) -> Tuple[List[Dict[str, Any]], ProbeLog, List[Span]]:
    """Read back (metrics snapshot, probe log, spans) from a directory.

    Missing artefacts load as empty — a campaign telemetry directory
    has metrics but no span stream, and that is fine.  By default the
    loader also *degrades* on damage: the serve daemon reads
    directories mid-write, so a truncated ``spans.jsonl`` or a
    half-written ``probes.json`` produces a :class:`UserWarning` and an
    empty artefact instead of an exception.  Pass ``strict=True`` to
    re-raise instead (offline analysis of a dir that should be whole).
    """
    root = Path(directory)

    def _degrade(name: str, exc: Exception):
        if strict:
            raise exc
        warnings.warn(f"telemetry dir {root}: unreadable {name} "
                      f"({type(exc).__name__}: {exc}); loading it as empty",
                      stacklevel=2)

    metrics: List[Dict[str, Any]] = []
    metrics_path = root / METRICS_JSON
    if metrics_path.is_file():
        try:
            loaded = json.loads(metrics_path.read_text(encoding="utf-8"))
            if not isinstance(loaded, list):
                raise ValueError(f"expected a JSON list, got "
                                 f"{type(loaded).__name__}")
            metrics = loaded
        except (OSError, ValueError) as exc:
            _degrade(METRICS_JSON, exc)
    probes = ProbeLog()
    probes_path = root / PROBES_JSON
    if probes_path.is_file():
        try:
            probes = ProbeLog.from_dict(
                json.loads(probes_path.read_text(encoding="utf-8")))
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            _degrade(PROBES_JSON, exc)
            probes = ProbeLog()
    spans: List[Span] = []
    spans_path = root / SPANS_JSONL
    if spans_path.is_file():
        try:
            spans = load_spans(str(spans_path), strict=strict)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            _degrade(SPANS_JSONL, exc)
            spans = []
    return metrics, probes, spans


# -- human tables --------------------------------------------------------------------


def metrics_table(metrics: Iterable[Dict[str, Any]],
                  title: str = "telemetry metrics") -> Table:
    """Counters/gauges/histograms as one table (from a snapshot)."""
    table = Table(title=title, headers=["metric", "type", "value"])
    for entry in metrics:
        labels = entry.get("labels") or {}
        name = entry["name"]
        if labels:
            rendered = ",".join(f"{key}={value}"
                                for key, value in sorted(labels.items()))
            name = f"{name}{{{rendered}}}"
        if entry["type"] == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            value = f"n={entry['count']} mean={mean:.6g} sum={entry['sum']:.6g}"
        else:
            number = entry["value"]
            value = f"{number:.6g}" if isinstance(number, float) else number
        table.add_row(name, entry["type"], value)
    return table


def probes_table(probes: ProbeLog, title: str = "probe series") -> Table:
    """Per-series summary: samples, mean, peak and the peak's time."""
    table = Table(title=title,
                  headers=["series", "samples", "mean", "peak", "peak t (s)"])
    for name, series in sorted(probes.series.items()):
        table.add_row(name, len(series), round(series.mean, 4),
                      round(series.peak, 4), round(series.peak_time, 2))
    return table


def span_summary_table(spans: Sequence[Span],
                       title: str = "span summary") -> Table:
    """Per-kind span counts and simulated-time totals."""
    table = Table(title=title,
                  headers=["kind", "spans", "total sim s", "mean sim s"])
    by_kind: Dict[str, List[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.kind, []).append(span)
    for kind, group in sorted(by_kind.items()):
        total = sum(span.duration for span in group)
        table.add_row(kind, len(group), round(total, 3),
                      round(total / len(group), 4))
    return table


def render_span_tree(spans: Sequence[Span], max_depth: Optional[int] = None,
                     max_children: int = 20,
                     kinds: Optional[Sequence[str]] = None) -> str:
    """Indented text rendering of the span tree.

    ``max_children`` truncates wide levels (a 100-fetch shuffle) with an
    elision marker; ``kinds`` filters which span kinds are printed
    (children of hidden spans are re-parented for display).
    """
    wanted = set(kinds) if kinds else None
    if wanted is not None:
        spans = _filtered_reparented(spans, wanted)
    children = span_children(spans)
    roots = children.get(None, [])
    known = {span.span_id for span in spans}
    for parent_id, group in children.items():
        if parent_id is not None and parent_id not in known:
            roots.extend(group)  # orphans (filtered files) become roots
    roots.sort(key=lambda span: (span.start, span.span_id))
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        end = f"{span.end:.3f}" if span.end is not None else "?"
        lines.append(f"{'  ' * depth}{span.kind}:{span.name} "
                     f"[{span.start:.3f} -> {end}]"
                     + (f" {span.attrs}" if span.attrs else ""))
        kids = children.get(span.span_id, [])
        for child in kids[:max_children]:
            walk(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}... "
                         f"({len(kids) - max_children} more)")

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def _filtered_reparented(spans: Sequence[Span],
                         wanted: set) -> List[Span]:
    """Keep only wanted kinds, re-linking children past hidden spans."""
    by_id = {span.span_id: span for span in spans}
    kept = []
    for span in spans:
        if span.kind not in wanted:
            continue
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None or parent.kind in wanted:
                break
            parent_id = parent.parent_id
        clone = Span(span.span_id, span.kind, span.name, span.start,
                     parent_id=parent_id, attrs=span.attrs)
        clone.end = span.end
        kept.append(clone)
    return kept
