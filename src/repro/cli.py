"""``keddah`` — the command-line face of the toolchain.

Subcommands mirror the pipeline stages::

    keddah capture  --job terasort --input-gb 1.0 --nodes 8 -o trace.jsonl
    keddah capture  --plan tpcx-hs --scale 1 -o hs.jsonl
    keddah plans    list
    keddah campaign --job terasort --job grep --workers 4 --store ./store
    keddah pipeline run --dir pipeline/ --experiments e12,e18
    keddah store    stats --store ./store
    keddah fit      traces/*.jsonl -o model.json
    keddah generate --model model.json --input-gb 4.0 -o synthetic.jsonl
    keddah replay   trace.jsonl
    keddah export   trace.jsonl --format ns3 -o replay.cc
    keddah report   trace.jsonl --telemetry telemetry/
    keddah trace    telemetry/spans.jsonl --kinds job,stage,task
    keddah serve    --telemetry telemetry/ --port 9109 --alerts rules.json
    keddah top      http://127.0.0.1:9109

Every command reads/writes the JSONL trace and JSON model formats, so
stages can be mixed with externally produced data.  ``capture`` and
``campaign`` accept ``--telemetry DIR`` to observe the run (metrics,
probes, spans) without changing the captured bytes; ``report`` and
``trace`` read those artefacts back.  ``campaign --serve-port N``
attaches the live observability daemon for the duration of the run;
``serve`` exposes a telemetry directory standalone; ``top`` renders a
one-shot cluster view from either.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.breakdown import component_breakdown
from repro.analysis.tables import Table, render_table
from repro.api import run_capture
from repro.capture.records import JobTrace
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.generation.export import to_flow_schedule_csv, to_json, to_ns3_script, to_omnet_ini
from repro.generation.generator import generate_trace
from repro.generation.replay import replay_trace
from repro.jobs import job_catalog, plan_catalog
from repro.modeling.model import JobTrafficModel, fit_job_model
from repro.net.backend import BACKEND_NAMES, ENGINE_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="keddah",
        description="Capture, model and reproduce Hadoop network traffic.")
    sub = parser.add_subparsers(dest="command", required=True)

    capture = sub.add_parser(
        "capture", help="run a job or workload plan and capture its flows")
    capture.add_argument("--job", default=None, choices=sorted(job_catalog()),
                         help="single-job capture (exactly one of "
                              "--job/--plan)")
    capture.add_argument("--plan", default=None,
                         choices=sorted(plan_catalog()),
                         help="multi-stage workload-plan capture "
                              "(see `keddah plans list`)")
    capture.add_argument("--scale", type=float, default=None,
                         help="plan scale factor (shorthand for "
                              "--plan-param scale=N, e.g. TPCx-HS scale)")
    capture.add_argument("--plan-param", action="append", default=[],
                         metavar="K=V", dest="plan_params",
                         help="plan parameter override (repeatable; values "
                              "parse as JSON, falling back to strings)")
    capture.add_argument("--input-gb", type=float, default=1.0)
    capture.add_argument("--nodes", type=int, default=8)
    capture.add_argument("--hosts-per-rack", type=int, default=4)
    capture.add_argument("--seed", type=int, default=0)
    capture.add_argument("--block-mb", type=int, default=32)
    capture.add_argument("--reducers", type=int, default=4)
    capture.add_argument("--replication", type=int, default=3)
    capture.add_argument("--backend", default="fluid",
                         choices=list(BACKEND_NAMES),
                         help="transport substrate: fluid (exact), analytic "
                              "(fast approximate timings), record (intent "
                              "log, degenerate timings)")
    capture.add_argument("--engine", default="scalar",
                         choices=list(ENGINE_NAMES),
                         help="fluid-engine implementation: scalar "
                              "(reference) or vectorized (numpy, "
                              "byte-identical captures, faster at scale)")
    capture.add_argument("--scheduler", default="fifo",
                         choices=["fifo", "fair", "capacity", "drf"])
    capture.add_argument("-o", "--output", required=True,
                         help="trace output path (.jsonl)")
    capture.add_argument("--store", default=None,
                         help="persistent capture-store directory (defaults "
                              "to $KEDDAH_CAPTURE_STORE; reuses a stored "
                              "capture instead of re-simulating)")
    capture.add_argument("--telemetry", default=None, metavar="DIR",
                         help="enable telemetry and write metrics/probes/"
                              "spans artefacts into this directory")
    capture.add_argument("--probe-interval", type=float, default=1.0,
                         help="probe sampling cadence in simulated seconds "
                              "(with --telemetry)")

    campaign = sub.add_parser(
        "campaign", help="run a capture sweep (jobs x input sizes), "
                         "optionally in parallel and against the store")
    campaign.add_argument("--job", action="append", required=True,
                          dest="jobs", choices=sorted(job_catalog()),
                          help="job kind (repeatable)")
    campaign.add_argument("--sizes-gb", default="0.25,0.5,1.0,2.0",
                          help="comma-separated input sizes in GiB")
    campaign.add_argument("--seed", type=int, default=42)
    campaign.add_argument("--nodes", type=int, default=8)
    campaign.add_argument("--hosts-per-rack", type=int, default=4)
    campaign.add_argument("--block-mb", type=int, default=32)
    campaign.add_argument("--reducers", type=int, default=4)
    campaign.add_argument("--replication", type=int, default=3)
    campaign.add_argument("--backend", default="fluid",
                          choices=list(BACKEND_NAMES),
                          help="transport substrate for every point "
                               "(store keys include it, so analytic and "
                               "fluid sweeps never alias)")
    campaign.add_argument("--engine", default="scalar",
                          choices=list(ENGINE_NAMES),
                          help="fluid-engine implementation for every point "
                               "(store keys exclude it: scalar and "
                               "vectorized captures are byte-identical)")
    campaign.add_argument("--scheduler", default="fifo",
                          choices=["fifo", "fair", "capacity", "drf"])
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes for cache-miss points "
                               "(0 = one per CPU core)")
    campaign.add_argument("--store", default=None,
                          help="persistent capture-store directory (defaults "
                               "to $KEDDAH_CAPTURE_STORE)")
    campaign.add_argument("--invalidate", action="store_true",
                          help="clear the store before running")
    campaign.add_argument("--retries", type=int, default=3,
                          help="attempt budget per point: transient worker "
                               "failures (broken pools, killed workers) are "
                               "retried with deterministic backoff up to this "
                               "many attempts before quarantine")
    campaign.add_argument("--deadline", type=float, default=None, metavar="S",
                          help="per-point wall-clock deadline in seconds; a "
                               "hung point is killed by the watchdog and "
                               "retried (then quarantined)")
    campaign.add_argument("--journal", default=None, metavar="PATH",
                          help="checkpoint journal written incrementally "
                               "during the run; pass it back via --resume to "
                               "skip completed points byte-identically")
    campaign.add_argument("--resume", default=None, metavar="JOURNAL",
                          help="resume from a checkpoint journal: completed "
                               "points are replayed without re-simulation "
                               "and new completions append to the same file")
    campaign.add_argument("--quarantine", default=None, metavar="PATH",
                          help="quarantine sidecar recording failure "
                               "fingerprints of poisoned points (default: "
                               "quarantine.jsonl next to the journal, when "
                               "one is configured)")
    campaign.add_argument("--telemetry", default=None, metavar="DIR",
                          help="enable telemetry and write the aggregated "
                               "registry artefacts into this directory "
                               "(worker span streams stay per-process)")
    campaign.add_argument("-o", "--output", default=None,
                          help="optional directory for per-point trace files")
    campaign.add_argument("--serve-port", type=int, default=None, metavar="N",
                          help="attach the live observability daemon on this "
                               "port (0 = ephemeral) for the duration of the "
                               "run: /metrics, /events progress stream, ...")
    campaign.add_argument("--serve-host", default="127.0.0.1",
                          help="bind address for --serve-port")
    campaign.add_argument("--alerts", default=None, metavar="RULES.json",
                          help="alert rule file evaluated live during the "
                               "run (with --serve-port)")

    pipeline = sub.add_parser(
        "pipeline",
        help="run the capture→classify→fit→replay→validate→report "
             "pipeline as a crash-safe, resumable DAG of isolated stages")
    pipeline.add_argument("action", choices=["run", "plan", "resume",
                                             "status"],
                          help="run: execute (writes pipeline.json); plan: "
                               "print the topological plan with cache hits; "
                               "resume: re-run only incomplete nodes from "
                               "the saved spec; status: journal + cache "
                               "state per node")
    pipeline.add_argument("--dir", required=True, dest="pipeline_dir",
                          metavar="DIR",
                          help="pipeline root directory (journal, spec, and "
                               "per-node stage dirs live here; relocatable)")
    pipeline.add_argument("--job", action="append", dest="jobs",
                          choices=sorted(job_catalog()),
                          help="job kind (repeatable; default: terasort, "
                               "wordcount, grep)")
    pipeline.add_argument("--plan", action="append", dest="plans",
                          choices=sorted(plan_catalog()),
                          help="workload plan captured alongside the sweep "
                               "(repeatable; adds a capture_plans node)")
    pipeline.add_argument("--sizes-gb", default=None,
                          help="captured sweep per job; the largest size is "
                               "the held-out validation target "
                               "(default: 0.25,0.5,1.0)")
    pipeline.add_argument("--fit-sizes-gb", default=None,
                          help="training subset of --sizes-gb for the fit "
                               "stage (default: all but the largest)")
    pipeline.add_argument("--seed", type=int, default=None)
    pipeline.add_argument("--nodes", type=int, default=None,
                          help="cluster nodes for the base campaign")
    pipeline.add_argument("--experiments", default=None, metavar="LIST",
                          help="comma-separated experiment nodes to port "
                               "onto the shared capture set (e12,e18)")
    pipeline.add_argument("--e12-input-gb", type=float, default=None)
    pipeline.add_argument("--e12-repeats", type=int, default=None)
    pipeline.add_argument("--e18-target-gb", type=float, default=None)
    pipeline.add_argument("--workers", type=int, default=None,
                          help="worker processes inside the capture stage")
    pipeline.add_argument("--on-failure", default="fail-fast",
                          choices=["fail-fast", "continue",
                                   "skip-descendants"],
                          help="failure propagation: stop at the first "
                               "quarantined node / finish independent "
                               "branches then fail / finish independent "
                               "branches and return the partial result")
    pipeline.add_argument("--retries", type=int, default=3,
                          help="attempt budget per node")
    pipeline.add_argument("--deadline", type=float, default=None, metavar="S",
                          help="per-node wall-clock deadline; a hung stage "
                               "is killed by the watchdog and retried")
    pipeline.add_argument("--dry-run", action="store_true",
                          help="with run/resume: print the plan and exit "
                               "without executing anything")
    pipeline.add_argument("--telemetry", action="store_true",
                          help="write per-node telemetry subdirs "
                               "(keddah top DIR aggregates them)")
    pipeline.add_argument("--serve-port", type=int, default=None, metavar="N",
                          help="attach the live observability daemon for "
                               "the run; node transitions stream on /events")
    pipeline.add_argument("--serve-host", default="127.0.0.1")
    pipeline.add_argument("--alerts", default=None, metavar="RULES.json")

    serve = sub.add_parser(
        "serve", help="serve a telemetry directory over HTTP "
                      "(Prometheus /metrics, JSON endpoints, SSE /events)")
    serve.add_argument("--telemetry", required=True, metavar="DIR",
                       help="telemetry directory to serve (reloaded as the "
                            "artefacts change, tolerant of mid-write state)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (0 = ephemeral, printed on start)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--alerts", default=None, metavar="RULES.json",
                       help="alert rule file (threshold/derivative/absence "
                            "rules over metrics and probe series)")
    serve.add_argument("--alert-interval", type=float, default=1.0,
                       metavar="S", help="wall seconds between alert "
                                         "evaluation passes")
    serve.add_argument("--for-seconds", type=float, default=None, metavar="S",
                       help="serve for this long then exit (tests/demos); "
                            "default: until interrupted")

    top = sub.add_parser(
        "top", help="one-shot cluster view: metrics + probes from a running "
                    "serve daemon (URL) or a telemetry directory")
    top.add_argument("source",
                     help="http(s)://host:port of a serve daemon, or a "
                          "telemetry directory path")

    plans = sub.add_parser(
        "plans", help="list or describe the registered workload plans")
    plans.add_argument("action", nargs="?", default="list",
                       choices=["list", "show"],
                       help="list: one row per plan; show: the full stage "
                            "DAG of one plan")
    plans.add_argument("name", nargs="?", default=None,
                       help="plan name (with show)")

    store_cmd = sub.add_parser(
        "store", help="inspect, scrub or clear the persistent capture store")
    store_cmd.add_argument("action",
                           choices=["stats", "clear", "verify", "repair"],
                           help="stats: counters; clear: drop everything; "
                                "verify: scrub for truncated/corrupt/stale/"
                                "mis-addressed entries (exit 1 if any); "
                                "repair: scrub and quarantine bad entries "
                                "into <store>/quarantine/")
    store_cmd.add_argument("--store", default=None,
                           help="store directory (defaults to "
                                "$KEDDAH_CAPTURE_STORE)")

    fit = sub.add_parser("fit", help="fit a traffic model from traces")
    fit.add_argument("traces", nargs="+", help="capture .jsonl files")
    fit.add_argument("-o", "--output", required=True,
                     help="model output path (.json), or a directory "
                          "with --bundle")
    fit.add_argument("--bundle", action="store_true",
                     help="traces mix job kinds: fit one model per kind "
                          "into the output directory")

    generate = sub.add_parser("generate", help="sample synthetic traffic")
    generate.add_argument("--model", required=True)
    generate.add_argument("--input-gb", type=float, required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True,
                          help="synthetic trace output path (.jsonl)")

    replay = sub.add_parser("replay", help="replay a trace through the network")
    replay.add_argument("trace")
    replay.add_argument("--time-scale", type=float, default=1.0)
    replay.add_argument("--backend", default="fluid",
                        choices=list(BACKEND_NAMES),
                        help="transport substrate to replay against")
    replay.add_argument("--engine", default="scalar",
                        choices=list(ENGINE_NAMES),
                        help="fluid-engine implementation to replay with")

    export = sub.add_parser("export", help="export a trace for a simulator")
    export.add_argument("trace")
    export.add_argument("--format",
                        choices=["csv", "ns3", "omnet", "json", "pcap"],
                        default="csv")
    export.add_argument("-o", "--output", required=True)

    report = sub.add_parser("report", help="print a trace's traffic breakdown")
    report.add_argument("trace")
    report.add_argument("--hotspots", action="store_true",
                        help="also print per-host traffic concentration")
    report.add_argument("--full", action="store_true",
                        help="print everything: breakdown, hotspots, "
                             "rack matrix and the traffic-over-time profile")
    report.add_argument("--telemetry", default=None, metavar="DIR",
                        help="also summarise a telemetry directory written "
                             "by capture/campaign --telemetry")

    trace_cmd = sub.add_parser(
        "trace", help="render a telemetry span tree (lifecycle trace)")
    trace_cmd.add_argument("spans",
                           help="spans.jsonl path, or a telemetry directory "
                                "containing one")
    trace_cmd.add_argument("--kinds", default=None,
                           help="comma-separated span kinds to show (e.g. "
                                "job,stage,task); hidden spans' children "
                                "are re-parented")
    trace_cmd.add_argument("--max-depth", type=int, default=None,
                           help="deepest tree level to print")
    trace_cmd.add_argument("--max-children", type=int, default=20,
                           help="children shown per span before eliding")
    trace_cmd.add_argument("--summary-only", action="store_true",
                           help="print only the per-kind summary table")

    validate = sub.add_parser(
        "validate", help="compare a synthetic trace against a capture")
    validate.add_argument("captured")
    validate.add_argument("synthetic")

    inspect = sub.add_parser("inspect", help="summarise a fitted model")
    inspect.add_argument("model", help="model JSON path")

    diff = sub.add_parser("diff", help="compare two fitted models")
    diff.add_argument("before", help="baseline model JSON")
    diff.add_argument("after", help="changed model JSON")
    diff.add_argument("--at-gb", type=float, default=1.0,
                      help="input size the laws are evaluated at")

    experiment = sub.add_parser(
        "experiment", help="regenerate an evaluation artefact (E1..E15, A1..A4)")
    experiment.add_argument("ids", nargs="+",
                            help="experiment ids (e.g. e01 e07 a2) or 'all'")
    experiment.add_argument("--markdown", default=None,
                            help="also write a markdown report to this path")

    workload = sub.add_parser(
        "workload", help="generate a synthetic multi-job workload trace")
    workload.add_argument("--models", required=True,
                          help="directory of per-kind model JSON files")
    workload.add_argument("--job", action="append", required=True,
                          metavar="KIND:GB[:START_S]",
                          help="one scheduled job (repeatable)")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("-o", "--output", required=True,
                          help="workload trace output path (.jsonl)")

    suite = sub.add_parser(
        "suite", help="run a multi-job workload suite on the simulator")
    suite.add_argument("--mix", default="micro",
                       choices=["micro", "shuffle-heavy", "analytics"])
    suite.add_argument("--count", type=int, default=6)
    suite.add_argument("--arrivals", default="uniform:20",
                       metavar="uniform:SPAN | poisson:RATE")
    suite.add_argument("--nodes", type=int, default=8)
    suite.add_argument("--scheduler", default="fifo",
                       choices=["fifo", "fair", "capacity", "drf"])
    suite.add_argument("--seed", type=int, default=0)
    suite.add_argument("-o", "--output", default=None,
                       help="optional directory for per-job trace files")
    return parser


def _resolve_store(path: Optional[str]):
    """A CaptureStore from --store, else $KEDDAH_CAPTURE_STORE, else None."""
    from repro.experiments.store import CaptureStore, store_from_env

    if path:
        return CaptureStore(path)
    return store_from_env()


def _telemetry_from_args(args: argparse.Namespace):
    """An enabled in-memory Telemetry when --telemetry DIR was given."""
    if not getattr(args, "telemetry", None):
        return None
    from repro.obs import Telemetry

    interval = getattr(args, "probe_interval", None)
    if interval is None:
        from repro.obs import DEFAULT_PROBE_INTERVAL
        interval = DEFAULT_PROBE_INTERVAL
    return Telemetry.enabled_in_memory(probe_interval=interval)


def _alert_engine(rules_path: Optional[str], broker):
    """An AlertEngine over a rule file, or None without one."""
    if not rules_path:
        return None
    from repro.obs import AlertEngine, load_rules

    return AlertEngine(load_rules(rules_path), broker=broker)


def _write_telemetry_dir(telemetry, directory: str) -> None:
    from repro.obs.export import write_telemetry

    paths = write_telemetry(telemetry, directory)
    telemetry.close()
    print(f"telemetry ({len(paths)} artefacts) -> {directory}")


def _plan_params_from_args(args: argparse.Namespace) -> dict:
    """Merge --scale and --plan-param K=V into one parameter dict."""
    import json

    params: dict = {}
    for item in args.plan_params:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ValueError(f"bad --plan-param {item!r}; expected K=V")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    if args.scale is not None:
        params["scale"] = args.scale
    return params


def cmd_capture(args: argparse.Namespace) -> int:
    if (args.job is None) == (args.plan is None):
        print("capture needs exactly one of --job or --plan")
        return 2
    if args.job is not None and (args.scale is not None or args.plan_params):
        print("--scale/--plan-param only apply to --plan captures")
        return 2
    config = HadoopConfig(block_size=args.block_mb * MB,
                          num_reducers=args.reducers,
                          replication=args.replication,
                          scheduler=args.scheduler)
    store = _resolve_store(args.store)
    telemetry = _telemetry_from_args(args)
    if args.plan is not None:
        try:
            params = _plan_params_from_args(args)
        except ValueError as exc:
            print(exc)
            return 2
        if store is not None:
            from repro.cluster.config import ClusterSpec
            from repro.experiments.runner import CampaignRunner, PlanPoint

            spec = ClusterSpec(num_nodes=args.nodes,
                               hosts_per_rack=args.hosts_per_rack,
                               backend=args.backend, engine=args.engine)
            point = PlanPoint.from_configs(args.plan, args.seed, spec, config,
                                           params)
            _, trace = CampaignRunner(store=store,
                                      telemetry=telemetry).run_point(point)
            origin = "store" if store.stats.hits else "simulated"
        else:
            trace = run_capture(plan=args.plan, plan_params=params,
                                nodes=args.nodes, seed=args.seed,
                                config=config,
                                hosts_per_rack=args.hosts_per_rack,
                                telemetry=telemetry, backend=args.backend,
                                engine=args.engine)
            origin = "simulated"
        from repro.analysis.plans import stage_table

        print(render_table(stage_table(trace)))
    elif store is not None:
        from repro.cluster.config import ClusterSpec
        from repro.experiments.runner import CampaignRunner, CapturePoint

        spec = ClusterSpec(num_nodes=args.nodes,
                           hosts_per_rack=args.hosts_per_rack,
                           backend=args.backend, engine=args.engine)
        point = CapturePoint.from_configs(args.job, args.input_gb, args.seed,
                                          spec, config)
        _, trace = CampaignRunner(store=store,
                                  telemetry=telemetry).run_point(point)
        origin = "store" if store.stats.hits else "simulated"
    else:
        trace = run_capture(args.job, input_gb=args.input_gb, nodes=args.nodes,
                            seed=args.seed, config=config,
                            hosts_per_rack=args.hosts_per_rack,
                            telemetry=telemetry, backend=args.backend,
                            engine=args.engine)
        origin = "simulated"
    trace.to_jsonl(args.output)
    print(f"captured {trace.flow_count()} flows "
          f"({trace.total_bytes() / MB:.1f} MiB, {origin}) -> {args.output}")
    if telemetry is not None:
        _write_telemetry_dir(telemetry, args.telemetry)
    return 0


def cmd_plans(args: argparse.Namespace) -> int:
    from repro.jobs.plan import make_plan

    if args.action == "show":
        if not args.name:
            print("plans show needs a plan name (see `keddah plans list`)")
            return 2
        try:
            plan = make_plan(args.name)
        except ValueError as exc:
            print(exc)
            return 2
        table = Table(title=f"plan {plan.name} "
                            f"(signature {plan.signature()[:12]})",
                      headers=["stage", "kind", "inputs", "reducers",
                               "overrides"])
        for stage in plan.topological_order():
            if stage.is_root:
                inputs = f"external {stage.input_gb} GiB"
            else:
                inputs = ", ".join(
                    f"{edge.source}" + ("" if edge.carryover == 1.0
                                        else f"x{edge.carryover}")
                    for edge in stage.inputs)
            overrides = stage.overrides()
            table.add_row(stage.name, stage.kind, inputs,
                          stage.num_reducers or "auto",
                          ", ".join(f"{k}={v}" for k, v in overrides.items())
                          or "-")
        if plan.score_rule:
            table.notes.append(f"score rule: {plan.score_rule}")
        if plan.params:
            table.notes.append(f"default params: {dict(plan.params)}")
        print(render_table(table))
        return 0
    table = Table(title="registered workload plans",
                  headers=["plan", "stages", "kinds", "score"])
    for name in sorted(plan_catalog()):
        plan = make_plan(name)
        table.add_row(name, len(plan.stages),
                      "→".join(stage.kind for stage in
                               plan.topological_order()),
                      plan.score_rule or "-")
    table.notes.append("run one with `keddah capture --plan NAME "
                       "-o trace.jsonl`; inspect with `keddah plans "
                       "show NAME`")
    print(render_table(table))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import time

    from repro.capture.records import save_traces
    from repro.experiments.campaigns import (
        CampaignConfig,
        cache_stats,
        get_store,
        make_runner,
        set_store,
    )
    from repro.experiments.runner import (
        CapturePoint,
        default_workers,
        derive_seed,
    )
    from repro.experiments.supervision import (
        CheckpointJournal,
        Quarantine,
        RetryPolicy,
    )

    try:
        sizes = [float(part) for part in args.sizes_gb.split(",") if part.strip()]
    except ValueError:
        print(f"bad --sizes-gb {args.sizes_gb!r}; expected e.g. 0.25,0.5,1.0")
        return 2
    if not sizes:
        print("--sizes-gb named no sizes")
        return 2
    campaign = CampaignConfig(nodes=args.nodes,
                              hosts_per_rack=args.hosts_per_rack,
                              block_mb=args.block_mb,
                              num_reducers=args.reducers,
                              replication=args.replication,
                              scheduler=args.scheduler,
                              backend=args.backend,
                              engine=args.engine)
    store = _resolve_store(args.store)
    if args.invalidate:
        if store is None:
            print("--invalidate needs a store (--store or "
                  "$KEDDAH_CAPTURE_STORE)")
            return 2
        print(f"invalidated {store.clear()} store entries in {store.root}")
    workers = args.workers if args.workers > 0 else default_workers()
    points = [CapturePoint.from_campaign(job, gb, derive_seed(args.seed, index),
                                         campaign)
              for job in args.jobs
              for index, gb in enumerate(sizes)]
    if args.retries < 1:
        print(f"--retries must be >= 1, got {args.retries}")
        return 2
    journal_path = args.resume or args.journal
    journal = CheckpointJournal(journal_path) if journal_path else None
    if args.resume and journal is not None and len(journal):
        print(f"resuming from {journal_path}: {len(journal)} completed "
              f"point(s) on record")
    quarantine_path = args.quarantine
    if quarantine_path is None and journal_path:
        quarantine_path = str(Path(journal_path).parent / "quarantine.jsonl")
    quarantine = Quarantine(quarantine_path)
    policy = RetryPolicy(max_attempts=args.retries, deadline_s=args.deadline)
    # Route through the campaign cache hierarchy (memo + store), so
    # cache_stats() below reports what this run actually hit.  The
    # previous store is restored on exit (embedders share the global).
    previous_store = get_store()
    set_store(store)
    telemetry = _telemetry_from_args(args)
    server = None
    broker = None
    if args.serve_port is not None:
        from repro.obs import EventBroker, Telemetry
        from repro.obs.server import serve_telemetry

        if telemetry is None:
            # Registry-only live view: counters still work on a
            # disabled telemetry, captures stay byte-identical.
            telemetry = Telemetry.disabled()
        broker = EventBroker()
        engine = _alert_engine(args.alerts, broker)
        server = serve_telemetry(telemetry, port=args.serve_port,
                                 host=args.serve_host, broker=broker,
                                 engine=engine)
        print(f"live observability at {server.url} "
              f"(/metrics /snapshot /probes /spans /alerts /events)")
    runner = make_runner(workers, telemetry=telemetry, retry_policy=policy,
                         journal=journal, quarantine=quarantine, strict=False,
                         events=broker)
    started = time.perf_counter()
    try:
        outcomes = runner.run(points)
    finally:
        elapsed = time.perf_counter() - started
        if server is not None:
            print(f"serve daemon: {server.requests_served} request(s), "
                  f"{server.broker.published} event(s) published")
            server.stop()

    table = Table(title=f"campaign: {len(args.jobs)} job(s) x {len(sizes)} "
                        f"size(s), {workers} worker(s)",
                  headers=["job", "input GiB", "seed", "flows", "MiB", "JCT s"])
    for point, outcome in zip(points, outcomes):
        if outcome is None:
            table.add_row(point.job, point.input_gb, point.seed,
                          "-", "-", "quarantined")
            continue
        result, trace = outcome
        table.add_row(point.job, point.input_gb, point.seed,
                      trace.flow_count(),
                      round(trace.total_bytes() / MB, 1),
                      round(result.completion_time, 2))
    stats = runner.stats
    table.notes.append(
        f"{elapsed:.2f}s wall; {stats.simulated} simulated "
        f"({stats.parallel_simulated} in parallel), "
        f"{stats.store_hits} store hit(s), {stats.memo_hits} memo hit(s)")
    if stats.resumed_points or stats.retries or stats.deadline_kills:
        table.notes.append(
            f"supervision: {stats.resumed_points} resumed, "
            f"{stats.retries} retrie(s), {stats.deadline_kills} deadline "
            f"kill(s), {stats.pool_failures} pool failure(s)")
    if store is not None:
        table.notes.append(f"store {store.root}: {store.stats.to_dict()}")
    print(render_table(table))
    caches = cache_stats()
    set_store(previous_store)
    memo = caches["memo"]
    line = (f"cache stats: memo {memo['hits']} hit(s) / "
            f"{memo['misses']} miss(es), {memo['entries']} entr(ies)")
    if "store" in caches:
        store_stats = caches["store"]
        line += (f"; store {store_stats['hits']} hit(s) / "
                 f"{store_stats['misses']} miss(es), "
                 f"{store_stats['writes']} write(s)")
    print(line)
    if telemetry is not None and args.telemetry:
        _write_telemetry_dir(telemetry, args.telemetry)
    if args.output:
        paths = save_traces([trace for _, trace in
                             (o for o in outcomes if o is not None)],
                            args.output)
        print(f"{len(paths)} traces -> {args.output}")
    if runner.failures:
        failed = Table(title=f"{len(runner.failures)} point(s) quarantined "
                             f"(campaign completed with partial results)",
                       headers=["job", "input GiB", "seed", "attempts",
                                "class", "fingerprint"])
        for failure in runner.failures:
            last = failure.fingerprints[-1] if failure.fingerprints else None
            failed.add_row(
                failure.job, failure.input_gb, failure.seed, failure.attempts,
                last.classification if last else "?",
                (f"{last.exception_type}: {last.message} "
                 f"[tb {last.traceback_sha256[:10]}]") if last else "?")
        if quarantine.path is not None:
            failed.notes.append(f"fingerprints -> {quarantine.path}")
        if journal is not None:
            failed.notes.append(
                f"re-run with --resume {journal.path} to retry only the "
                f"quarantined point(s)")
        print(render_table(failed))
        return 1
    return 0


def _parse_float_list(text: str, flag: str):
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(
            f"bad {flag} {text!r}; expected e.g. 0.25,0.5,1.0") from None
    if not values:
        raise ValueError(f"{flag} named no sizes")
    return tuple(values)


def cmd_pipeline(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.dag import (
        CACHED,
        DONE,
        DAGRunner,
        PipelineFailed,
    )
    from repro.experiments.pipelines import (
        PipelineSpec,
        build_pipeline,
        load_spec,
        save_spec,
    )
    from repro.experiments.supervision import Quarantine, RetryPolicy

    root = Path(args.pipeline_dir)
    from repro.experiments.pipelines import PIPELINE_SPEC_FILE

    spec_path = root / PIPELINE_SPEC_FILE

    def apply_overrides(base: PipelineSpec) -> PipelineSpec:
        overrides = {}
        if args.jobs:
            overrides["jobs"] = tuple(args.jobs)
        if args.plans:
            overrides["plans"] = tuple(args.plans)
        if args.sizes_gb is not None:
            overrides["sizes_gb"] = _parse_float_list(args.sizes_gb,
                                                      "--sizes-gb")
        if args.fit_sizes_gb is not None:
            overrides["fit_sizes_gb"] = _parse_float_list(args.fit_sizes_gb,
                                                          "--fit-sizes-gb")
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.nodes is not None:
            overrides["campaign"] = dict(base.campaign, nodes=args.nodes)
        if args.experiments is not None:
            overrides["experiments"] = tuple(
                part.strip() for part in args.experiments.split(",")
                if part.strip())
        if args.e12_input_gb is not None:
            overrides["e12_input_gb"] = args.e12_input_gb
        if args.e12_repeats is not None:
            overrides["e12_repeats"] = args.e12_repeats
        if args.e18_target_gb is not None:
            overrides["e18_target_gb"] = args.e18_target_gb
        if args.workers is not None:
            overrides["workers"] = args.workers
        return base.with_overrides(**overrides) if overrides else base

    if args.action in ("resume", "status") and not spec_path.is_file():
        print(f"{root}: no {spec_path.name} "
              f"(run `keddah pipeline run --dir {root}` first)")
        return 2
    try:
        if args.action == "resume":
            # Resume must rebuild the *identical* DAG: the saved spec
            # wins and workload flags are ignored (a changed workload
            # is a new `run`, which re-keys the affected nodes).
            spec = load_spec(root)
        else:
            base = load_spec(root) if spec_path.is_file() else PipelineSpec()
            spec = apply_overrides(base)
        dag = build_pipeline(spec)
    except ValueError as exc:
        print(f"bad pipeline spec: {exc}")
        return 2

    telemetry = None
    if args.telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry.enabled_in_memory()

    broker = None
    server = None
    if args.serve_port is not None and args.action in ("run", "resume"):
        from repro.obs import EventBroker, Telemetry
        from repro.obs.server import serve_telemetry

        if telemetry is None:
            telemetry = Telemetry.disabled()
        broker = EventBroker()
        engine = _alert_engine(args.alerts, broker)
        server = serve_telemetry(telemetry, port=args.serve_port,
                                 host=args.serve_host, broker=broker,
                                 engine=engine)
        print(f"live observability at {server.url} "
              f"(node transitions stream on /events)")

    if args.retries < 1:
        print(f"--retries must be >= 1, got {args.retries}")
        return 2
    runner = DAGRunner(
        dag, root,
        retry_policy=RetryPolicy(max_attempts=args.retries,
                                 deadline_s=args.deadline),
        quarantine=Quarantine(root / "quarantine.jsonl"),
        on_failure=args.on_failure,
        telemetry=telemetry,
        events=broker,
        node_telemetry=args.telemetry)

    if args.action == "plan" or args.dry_run:
        table = Table(title=f"pipeline plan: {len(dag)} node(s) under {root}",
                      headers=["node", "stage", "action", "after", "dir"])
        plan = runner.plan()
        for entry in plan:
            table.add_row(entry["node"], entry["stage"], entry["action"],
                          ",".join(entry["after"]) or "-",
                          entry["dir"] or "?")
        cached = sum(1 for entry in plan if entry["action"] == "cached")
        table.notes.append(f"{cached} cached, "
                           f"{len(plan) - cached} to run "
                           f"(stale-upstream nodes re-key once their "
                           f"upstream re-runs)")
        print(render_table(table))
        if server is not None:
            server.stop()
        return 0

    if args.action == "status":
        last = runner.journal.last_states()
        runs = runner.journal.run_counts()
        table = Table(title=f"pipeline status: {root}",
                      headers=["node", "stage", "journal", "runs",
                               "cache", "dir"])
        for entry in runner.plan():
            name = entry["node"]
            table.add_row(name, entry["stage"],
                          last.get(name, {}).get("state", "-"),
                          runs.get(name, 0), entry["action"],
                          entry["dir"] or "?")
        table.notes.append(
            f"journal {runner.journal.path.name}: "
            f"{len(runner.journal.transitions)} transition(s), "
            f"{runner.journal.truncated_lines} torn line(s) tolerated")
        print(render_table(table))
        return 0

    if args.action == "run":
        root.mkdir(parents=True, exist_ok=True)
        save_spec(root, spec)
    elif len(runner.journal.transitions):
        completed = sum(1 for entry in runner.plan()
                        if entry["action"] == "cached")
        print(f"resuming {root}: {completed} node(s) already complete")

    started = time.perf_counter()
    try:
        result = runner.run()
        failed = None
    except PipelineFailed as exc:
        result = exc.result
        failed = exc
    finally:
        elapsed = time.perf_counter() - started
        if server is not None:
            print(f"serve daemon: {server.requests_served} request(s), "
                  f"{server.broker.published} event(s) published")
            server.stop()

    table = Table(title=f"pipeline {dag.name}: {len(dag)} node(s) "
                        f"under {root}",
                  headers=["node", "stage", "state", "attempts", "dir"])
    for name in dag.topological_order():
        outcome = result.outcomes[name]
        table.add_row(name, outcome.stage, outcome.state,
                      outcome.attempts or "-", outcome.dir or "-")
    executed = result.in_state(DONE)
    cached = result.in_state(CACHED)
    table.notes.append(f"{elapsed:.2f}s wall; {len(executed)} executed, "
                       f"{len(cached)} cached")
    if result.failures or failed is not None:
        bad = result.in_state("quarantined")
        table.notes.append(f"quarantined: {', '.join(bad)} "
                           f"(fingerprints -> quarantine.jsonl); resume "
                           f"with `keddah pipeline resume --dir {root}`")
    print(render_table(table))
    if telemetry is not None and args.telemetry:
        _write_telemetry_dir(telemetry, str(root / "telemetry"))
    if failed is not None or not result.ok:
        return 1
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store)
    if store is None:
        print("no store configured: pass --store DIR or set "
              "$KEDDAH_CAPTURE_STORE")
        return 2
    if args.action == "clear":
        print(f"cleared {store.clear()} entries from {store.root}")
        return 0
    if args.action in ("verify", "repair"):
        report = store.verify(repair=(args.action == "repair"))
        table = Table(title=f"store scrub at {store.root} "
                            f"({'repair' if report.repaired else 'verify'})",
                      headers=["metric", "value"])
        table.add_row("entries scanned", report.scanned)
        table.add_row("ok", report.ok)
        table.add_row("corrupt", report.corrupt)
        table.add_row("stale", report.stale)
        table.add_row("mis-addressed", report.mismatched)
        table.add_row("tmp droppings", report.tmp_files)
        if report.repaired:
            table.add_row("quarantined", report.quarantined)
            table.add_row("tmp removed", report.removed_tmp)
        table.add_row("MiB scanned", round(report.bytes_scanned / MB, 2))
        for problem in report.problems:
            table.notes.append(problem)
        if report.repaired and report.quarantined:
            table.notes.append(f"bad entries moved to {store.quarantine_dir}")
        print(render_table(table))
        if not report.clean and not report.repaired:
            return 1
        return 0
    table = Table(title=f"capture store at {store.root}",
                  headers=["metric", "value"])
    table.add_row("entries", store.entry_count())
    table.add_row("size (MiB)", round(store.size_bytes() / MB, 2))
    print(render_table(table))
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    traces = [JobTrace.from_jsonl(path) for path in args.traces]
    if args.bundle:
        from repro.modeling.bundle import ModelBundle

        bundle = ModelBundle.fit(traces)
        paths = bundle.save(args.output)
        print(f"fitted {len(bundle)} model(s) for {bundle.kinds()} "
              f"-> {args.output} ({len(paths)} files)")
        return 0
    model = fit_job_model(traces)
    model.to_json(args.output)
    families = ", ".join(f"{name}={component.size_dist.family}"
                         for name, component in sorted(model.components.items()))
    print(f"fitted {model.kind} model from {len(traces)} trace(s): {families}")
    print(f"model -> {args.output}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    model = JobTrafficModel.from_json(args.model)
    trace = generate_trace(model, input_gb=args.input_gb, seed=args.seed)
    trace.to_jsonl(args.output)
    print(f"generated {trace.flow_count()} flows "
          f"({trace.total_bytes() / MB:.1f} MiB) for {args.input_gb} GiB "
          f"{model.kind} -> {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = JobTrace.from_jsonl(args.trace)
    report = replay_trace(trace, time_scale=args.time_scale,
                          backend=args.backend, engine=args.engine)
    table = Table(title=f"replay of {args.trace}",
                  headers=["metric", "value"])
    table.add_row("flows", report.flow_count)
    table.add_row("bytes (MiB)", round(report.total_bytes / MB, 2))
    table.add_row("makespan (s)", round(report.makespan, 2))
    table.add_row("mean flow duration (s)", round(report.mean_flow_duration, 4))
    table.add_row("mean link utilisation", round(report.mean_link_utilisation, 4))
    table.add_row("peak link utilisation", round(report.peak_link_utilisation, 4))
    print(render_table(table))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    trace = JobTrace.from_jsonl(args.trace)
    if args.format == "pcap":
        from repro.capture.pcap import synthesize_packets
        from repro.capture.pcapfile import write_pcap

        packets = [packet for flow in trace.flows
                   for packet in synthesize_packets(flow)]
        count = write_pcap(packets, args.output)
        print(f"exported {count} packets (pcap) -> {args.output}")
        return 0
    writers = {
        "csv": to_flow_schedule_csv,
        "ns3": to_ns3_script,
        "omnet": to_omnet_ini,
        "json": to_json,
    }
    count = writers[args.format](trace, args.output)
    print(f"exported {count} flows ({args.format}) -> {args.output}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    ids = sorted(figures.ALL_EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in figures.ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(figures.ALL_EXPERIMENTS))}")
        return 2
    for experiment_id in ids:
        for table in figures.ALL_EXPERIMENTS[experiment_id]():
            print(render_table(table))
            print()
    if args.markdown:
        from repro.experiments.report import write_report

        path = write_report(args.markdown, ids)
        print(f"markdown report -> {path}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.modeling.health import check_model
    from repro.modeling.inspect import describe_model

    model = JobTrafficModel.from_json(args.model)
    for table in describe_model(model):
        print(render_table(table))
        print()
    warnings = check_model(model)
    if warnings:
        print("health checks:")
        for warning in warnings:
            print(f"  {warning}")
    else:
        print("health checks: clean")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.modeling.diff import diff_table

    before = JobTrafficModel.from_json(args.before)
    after = JobTrafficModel.from_json(args.after)
    if before.kind != after.kind:
        print(f"models are for different job kinds: "
              f"{before.kind!r} vs {after.kind!r}")
        return 2
    print(render_table(diff_table(before, after, at_gb=args.at_gb,
                                  labels=(args.before, args.after))))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.capture.records import save_traces
    from repro.cluster.config import ClusterSpec
    from repro.workloads import (
        ANALYTICS_MIX,
        MICRO_MIX,
        SHUFFLE_HEAVY_MIX,
        PoissonArrivals,
        UniformArrivals,
        WorkloadSuite,
    )

    mixes = {"micro": MICRO_MIX, "shuffle-heavy": SHUFFLE_HEAVY_MIX,
             "analytics": ANALYTICS_MIX}
    kind, _, value = args.arrivals.partition(":")
    if kind == "uniform":
        arrivals = UniformArrivals(span=float(value or 20))
    elif kind == "poisson":
        arrivals = PoissonArrivals(rate=float(value or 0.2))
    else:
        print(f"bad --arrivals {args.arrivals!r}")
        return 2
    suite = WorkloadSuite(mixes[args.mix], arrivals=arrivals, name=args.mix)
    config = HadoopConfig(block_size=32 * MB, num_reducers=4,
                          scheduler=args.scheduler)
    outcome = suite.run(count=args.count,
                        cluster_spec=ClusterSpec(num_nodes=args.nodes,
                                                 hosts_per_rack=4),
                        config=config, seed=args.seed)
    table = Table(title=f"suite {args.mix} x{args.count} ({args.scheduler})",
                  headers=["job", "kind", "arrival s", "JCT s", "MiB"])
    for result, trace, arrival in zip(outcome.results, outcome.traces,
                                      outcome.arrival_times):
        table.add_row(result.job_id, result.kind, round(arrival, 1),
                      round(result.completion_time, 2),
                      round(trace.total_bytes() / MB, 1))
    table.notes.append(f"makespan {outcome.makespan:.1f}s, mean JCT "
                       f"{outcome.mean_jct():.1f}s, traffic "
                       f"{outcome.total_bytes() / MB:.0f} MiB")
    print(render_table(table))
    if args.output:
        paths = save_traces(outcome.traces, args.output)
        print(f"{len(paths)} traces -> {args.output}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.compare import validation_summary

    captured = JobTrace.from_jsonl(args.captured)
    synthetic = JobTrace.from_jsonl(args.synthetic)
    summary = validation_summary(captured, synthetic)
    table = Table(title=f"validation: {args.synthetic} vs {args.captured}",
                  headers=["component", "captured flows", "synthetic flows",
                           "count err", "volume err", "size KS"])
    for component, comparison in sorted(summary.components.items()):
        if comparison.captured_flows == 0 and comparison.synthetic_flows == 0:
            continue
        table.add_row(component, comparison.captured_flows,
                      comparison.synthetic_flows,
                      round(comparison.count_error, 3),
                      round(comparison.volume_error, 3),
                      round(comparison.size_ks.statistic, 3)
                      if comparison.size_ks else "-")
    table.notes.append(f"means: size KS {summary.mean_size_ks:.3f}, "
                       f"count err {summary.mean_count_error:.3f}, "
                       f"volume err {summary.mean_volume_error:.3f}")
    print(render_table(table))
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.generation.workload import ScheduledJob, generate_workload_trace
    from repro.modeling.bundle import ModelBundle

    schedule = []
    for entry in args.job:
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            print(f"bad --job {entry!r}; expected KIND:GB[:START_S]")
            return 2
        kind, gb = parts[0], float(parts[1])
        start = float(parts[2]) if len(parts) == 3 else 0.0
        schedule.append(ScheduledJob(kind, input_gb=gb, start_s=start))
    bundle = ModelBundle.load(args.models)
    trace = generate_workload_trace(bundle, schedule, seed=args.seed)
    trace.to_jsonl(args.output)
    print(f"generated workload of {len(schedule)} jobs: "
          f"{trace.flow_count()} flows "
          f"({trace.total_bytes() / MB:.1f} MiB) -> {args.output}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    trace = JobTrace.from_jsonl(args.trace)
    meta = trace.meta
    table = Table(
        title=(f"{meta.job_id} ({meta.job_kind}, "
               f"{meta.input_bytes / (1024 * MB):.2f} GiB input)"),
        headers=["component", "flows", "MiB", "share", "cross-rack MiB"])
    for component, stats in component_breakdown(trace).items():
        if stats["flows"]:
            table.add_row(component, int(stats["flows"]),
                          round(stats["bytes"] / MB, 2),
                          f"{stats['share']:.1%}",
                          round(stats["cross_rack_bytes"] / MB, 2))
    table.notes.append(f"completion time: {meta.completion_time:.2f}s, "
                       f"maps: {meta.num_maps}, reduces: {meta.num_reduces}")
    print(render_table(table))
    if getattr(args, "hotspots", False) or getattr(args, "full", False):
        from repro.analysis.hotspots import hotspot_table

        print()
        print(render_table(hotspot_table(trace)))
    if getattr(args, "full", False):
        from repro.analysis.matrix import rack_matrix_table
        from repro.analysis.timeseries import phase_profile

        print()
        print(render_table(rack_matrix_table(trace)))
        print()
        print(render_table(phase_profile(trace)))
    if getattr(args, "telemetry", None):
        from repro.obs.export import (
            load_telemetry_dir,
            metrics_table,
            probes_table,
            span_summary_table,
        )

        metrics, probes, spans = load_telemetry_dir(args.telemetry)
        print()
        print(render_table(metrics_table(
            metrics, title=f"telemetry metrics ({args.telemetry})")))
        if probes.series:
            print()
            print(render_table(probes_table(probes)))
        if spans:
            print()
            print(render_table(span_summary_table(spans)))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs import EventBroker
    from repro.obs.server import ENDPOINTS, serve_directory

    if not Path(args.telemetry).is_dir():
        print(f"no telemetry directory at {args.telemetry} "
              f"(run capture/campaign --telemetry DIR first)")
        return 2
    broker = EventBroker()
    engine = _alert_engine(args.alerts, broker)
    server = serve_directory(args.telemetry, port=args.port, host=args.host,
                             broker=broker, engine=engine,
                             alert_interval=args.alert_interval)
    print(f"serving telemetry dir {args.telemetry} at {server.url}")
    print(f"endpoints: {' '.join(ENDPOINTS)}")
    if engine is not None:
        print(f"alerts: {len(engine.rules)} rule(s) from {args.alerts}, "
              f"evaluated every {args.alert_interval}s")
    try:
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(f"served {server.requests_served} request(s)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.export import metrics_table, probes_table
    from repro.obs.probes import ProbeLog

    if args.source.startswith(("http://", "https://")):
        import json as _json
        from urllib.request import urlopen

        base = args.source.rstrip("/")

        def _fetch(endpoint):
            with urlopen(f"{base}{endpoint}", timeout=10) as response:
                return _json.loads(response.read().decode("utf-8"))

        try:
            health = _fetch("/healthz")
            metrics = _fetch("/snapshot")
            probes = ProbeLog.from_dict(_fetch("/probes"))
        except OSError as exc:
            print(f"cannot reach serve daemon at {base}: {exc}")
            return 2
        source = health.get("source", {})
        print(f"{base}: {source.get('kind', '?')} source, "
              f"up {health.get('uptime_s', 0):.0f}s, "
              f"{health.get('requests_served', 0)} request(s) served")
        firing = health.get("alerts_firing") or []
        if firing:
            print(f"ALERTS FIRING: {', '.join(firing)}")
    else:
        from repro.obs.server import DirSource

        if not Path(args.source).is_dir():
            print(f"{args.source}: not a URL or telemetry directory")
            return 2
        source = DirSource(args.source)
        metrics = source.metrics_snapshot()
        probes = source.probes()
    print(render_table(metrics_table(
        metrics, title=f"cluster metrics ({args.source})")))
    if probes.series:
        print()
        print(render_table(probes_table(probes)))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import render_span_tree, span_summary_table
    from repro.obs.trace import load_spans

    path = Path(args.spans)
    if path.is_dir():
        path = path / "spans.jsonl"
    if not path.is_file():
        print(f"no span stream at {path} (run capture --telemetry DIR first)")
        return 2
    spans = load_spans(str(path))
    if not spans:
        print(f"{path}: no spans recorded")
        return 0
    print(render_table(span_summary_table(spans, title=f"spans in {path}")))
    if not args.summary_only:
        kinds = ([part.strip() for part in args.kinds.split(",") if part.strip()]
                 if args.kinds else None)
        print()
        print(render_span_tree(spans, max_depth=args.max_depth,
                               max_children=args.max_children, kinds=kinds))
    return 0


_COMMANDS = {
    "capture": cmd_capture,
    "campaign": cmd_campaign,
    "pipeline": cmd_pipeline,
    "plans": cmd_plans,
    "store": cmd_store,
    "fit": cmd_fit,
    "generate": cmd_generate,
    "replay": cmd_replay,
    "export": cmd_export,
    "report": cmd_report,
    "serve": cmd_serve,
    "top": cmd_top,
    "trace": cmd_trace,
    "experiment": cmd_experiment,
    "workload": cmd_workload,
    "validate": cmd_validate,
    "suite": cmd_suite,
    "inspect": cmd_inspect,
    "diff": cmd_diff,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
