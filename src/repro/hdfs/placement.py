"""Block replica placement policies.

The default policy reproduces Hadoop's
``BlockPlacementPolicyDefault``:

1. first replica on the writer's node (if the writer is a DataNode,
   else a random node),
2. second replica on a node in a *different* rack,
3. third replica on a *different node in the same rack as the second*,
4. further replicas on random nodes, no two on one node.

On single-rack clusters replicas degrade to distinct random nodes, as
in Hadoop.  :class:`RandomPlacementPolicy` ignores racks entirely and
exists for the A1-style ablations (placement policy → cross-rack write
traffic).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.topology import Host


class PlacementPolicy:
    """Interface: choose replica targets for a new block."""

    def choose_targets(self, hosts: Sequence[Host], replication: int,
                       writer: Optional[Host], rng: np.random.Generator) -> List[Host]:
        """Return ``min(replication, len(hosts))`` distinct hosts, pipeline-ordered."""
        raise NotImplementedError


class DefaultPlacementPolicy(PlacementPolicy):
    """Hadoop's rack-aware default placement."""

    def choose_targets(self, hosts: Sequence[Host], replication: int,
                       writer: Optional[Host], rng: np.random.Generator) -> List[Host]:
        if not hosts:
            raise ValueError("no DataNodes available for placement")
        hosts = list(hosts)
        count = min(replication, len(hosts))
        targets: List[Host] = []

        first = writer if writer is not None and writer in hosts else _pick(hosts, rng)
        targets.append(first)
        if count == 1:
            return targets

        off_rack = [host for host in hosts if host.rack != first.rack and host not in targets]
        second = _pick(off_rack, rng) if off_rack else _pick(_excluding(hosts, targets), rng)
        targets.append(second)
        if count == 2:
            return targets

        same_rack_as_second = [host for host in hosts
                               if host.rack == second.rack and host not in targets]
        third = (_pick(same_rack_as_second, rng) if same_rack_as_second
                 else _pick(_excluding(hosts, targets), rng))
        targets.append(third)

        while len(targets) < count:
            targets.append(_pick(_excluding(hosts, targets), rng))
        return targets


class RandomPlacementPolicy(PlacementPolicy):
    """Rack-oblivious placement (ablation baseline)."""

    def choose_targets(self, hosts: Sequence[Host], replication: int,
                       writer: Optional[Host], rng: np.random.Generator) -> List[Host]:
        if not hosts:
            raise ValueError("no DataNodes available for placement")
        hosts = list(hosts)
        count = min(replication, len(hosts))
        indices = rng.choice(len(hosts), size=count, replace=False)
        return [hosts[i] for i in indices]


def _pick(candidates: Sequence[Host], rng: np.random.Generator) -> Host:
    if not candidates:
        raise ValueError("placement candidate set is empty")
    return candidates[int(rng.integers(len(candidates)))]


def _excluding(hosts: Sequence[Host], taken: Sequence[Host]) -> List[Host]:
    return [host for host in hosts if host not in taken]
