"""The NameNode: namespace, block map and replica selection."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.topology import Host
from repro.hdfs.blocks import Block, BlockLocation
from repro.hdfs.placement import DefaultPlacementPolicy, PlacementPolicy
from repro.obs.telemetry import Telemetry


class BlockLostError(RuntimeError):
    """Raised when a block has no live replica left."""


class NameNode:
    """In-memory HDFS namespace and block manager.

    Runs on ``host`` (the cluster master).  Keeps ``path → [Block]`` and
    ``block → BlockLocation``; allocates new blocks through the
    placement policy and answers locality-sorted replica queries for
    readers.
    """

    def __init__(self, host: Host, datanodes: Sequence[Host],
                 policy: Optional[PlacementPolicy] = None,
                 rng: Optional[np.random.Generator] = None,
                 telemetry: Optional[Telemetry] = None,
                 seed: Optional[int] = None):
        if not datanodes:
            raise ValueError("NameNode needs at least one DataNode")
        self.host = host
        self.datanodes = list(datanodes)
        self.policy = policy or DefaultPlacementPolicy()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Placement/read-tie decisions draw from per-key generators
        # derived from ``seed`` + a stable content key (path, block
        # index, occurrence count) instead of one shared stream, so the
        # chosen replicas do not depend on *request order* — which
        # varies with transport-backend timing while the keys do not.
        # ``seed=None`` (stand-alone NameNodes in unit tests) falls
        # back to the shared order-dependent stream.
        self._seed = seed
        self._draw_counts: Dict[str, int] = {}
        # The NameNode holds no simulator reference, so the cluster
        # hands it the telemetry facade explicitly.
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        registry = self.telemetry.registry
        self._c_files_created = registry.counter("hdfs.nn.files_created")
        self._c_blocks_allocated = registry.counter("hdfs.nn.blocks_allocated")
        self._c_replica_reads = registry.counter("hdfs.nn.replica_reads")
        self._files: Dict[str, List[Block]] = {}
        self._locations: Dict[int, BlockLocation] = {}
        # Per-namespace block ids: read-path port tags embed the block
        # id, so it must not depend on process history.
        self._block_ids = itertools.count(1)
        self._dead: set = set()
        self._decommissioning: set = set()

    def _keyed_rng(self, key: str) -> np.random.Generator:
        """Per-decision generator: f(seed, key, occurrence) — not order.

        Repeated draws for one key stay independent (the occurrence
        count feeds the spawn key), yet any two distinct decisions never
        share a stream, so the outcome of one can never shift another's.
        """
        if self._seed is None:
            return self.rng
        count = self._draw_counts.get(key, 0)
        self._draw_counts[key] = count + 1
        from repro.simkit.rng import stable_hash
        sequence = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(stable_hash(key), count))
        return np.random.default_rng(sequence)

    # -- namespace ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def create_file(self, path: str) -> None:
        if path in self._files:
            raise FileExistsError(f"HDFS path already exists: {path}")
        self._files[path] = []
        self._c_files_created.value += 1

    def delete_file(self, path: str) -> None:
        blocks = self._files.pop(path, None)
        if blocks is None:
            raise FileNotFoundError(path)
        for block in blocks:
            del self._locations[block.block_id]

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def file_size(self, path: str) -> int:
        return sum(block.size for block in self.blocks_of(path))

    def blocks_of(self, path: str) -> List[Block]:
        blocks = self._files.get(path)
        if blocks is None:
            raise FileNotFoundError(path)
        return list(blocks)

    # -- liveness ---------------------------------------------------------------

    @property
    def live_datanodes(self) -> List[Host]:
        """DataNodes usable as placement targets.

        Excludes dead nodes and nodes being decommissioned — a
        decommissioning node still *serves* its replicas (reads keep
        working during the drain) but receives no new ones.
        """
        return [host for host in self.datanodes
                if host not in self._dead and host not in self._decommissioning]

    def start_decommission(self, host: Host) -> List[BlockLocation]:
        """Begin draining ``host``: no new placements; return its blocks.

        Unlike :meth:`mark_dead`, replicas on the host stay readable —
        the caller re-replicates them elsewhere (with traffic) and then
        calls :meth:`finish_decommission`.
        """
        self._decommissioning.add(host)
        return self.blocks_on(host)

    def finish_decommission(self, host: Host) -> None:
        """Complete the drain: drop the host's replicas and retire it."""
        self._decommissioning.discard(host)
        self._dead.add(host)
        for location in self._locations.values():
            if host in location.replicas:
                location.replicas.remove(host)

    def is_decommissioning(self, host: Host) -> bool:
        return host in self._decommissioning

    def is_dead(self, host: Host) -> bool:
        return host in self._dead

    def mark_dead(self, host: Host) -> List[BlockLocation]:
        """Record a DataNode failure; return now-under-replicated blocks.

        The dead host is removed from every replica set (mirroring the
        NameNode pruning a lost DN's block reports).  Blocks whose last
        replica died stay registered with an empty replica list —
        readers get :class:`BlockLostError`.
        """
        self._dead.add(host)
        under_replicated = []
        for location in self._locations.values():
            if host in location.replicas:
                location.replicas.remove(host)
                under_replicated.append(location)
        return under_replicated

    def choose_rereplication(self, location: BlockLocation
                             ) -> Optional[tuple]:
        """Pick a (source, target) pair to restore one lost replica.

        Returns ``None`` when no live source or no spare target exists.
        """
        sources = [replica for replica in location.replicas
                   if replica not in self._dead]
        if not sources:
            return None
        candidates = [host for host in self.live_datanodes
                      if host not in location.replicas]
        if not candidates:
            return None
        source = sources[int(self.rng.integers(len(sources)))]
        target = self.policy.choose_targets(candidates, 1, None, self.rng)[0]
        location.replicas.append(target)
        return source, target

    # -- block management -----------------------------------------------------

    def allocate_block(self, path: str, size: int, replication: int,
                       writer: Optional[Host]) -> BlockLocation:
        """Append a block to ``path`` and choose its replica pipeline."""
        blocks = self._files.get(path)
        if blocks is None:
            raise FileNotFoundError(path)
        live = self.live_datanodes
        if not live:
            raise RuntimeError("no live DataNodes to place a block on")
        if writer is not None and writer in self._dead:
            writer = None
        block = Block(path=path, index=len(blocks), size=size,
                      block_id=next(self._block_ids))
        targets = self.policy.choose_targets(
            live, replication, writer,
            self._keyed_rng(f"place:{path}:{len(blocks)}"))
        location = BlockLocation(block=block, replicas=targets)
        blocks.append(block)
        self._locations[block.block_id] = location
        self._c_blocks_allocated.value += 1
        return location

    def locate(self, block: Block) -> BlockLocation:
        location = self._locations.get(block.block_id)
        if location is None:
            raise KeyError(f"unknown block {block!r}")
        return location

    def locate_file(self, path: str) -> List[BlockLocation]:
        return [self.locate(block) for block in self.blocks_of(path)]

    def choose_replica_for_read(self, block: Block, reader: Host) -> Host:
        """Closest *live* replica: node-local, then rack-local, then any.

        Ties are broken with the NameNode RNG, matching HDFS's random
        pick among equally distant replicas.  Raises
        :class:`BlockLostError` when every replica is dead.
        """
        replicas = [replica for replica in self.locate(block).replicas
                    if replica not in self._dead]
        if not replicas:
            raise BlockLostError(f"all replicas of {block!r} are dead")
        self._c_replica_reads.value += 1
        if reader in replicas:
            return reader
        rack_local = [replica for replica in replicas if replica.rack == reader.rack]
        pool = rack_local or replicas
        rng = self._keyed_rng(
            f"read:{block.path}:{block.index}:{reader.name}")
        return pool[int(rng.integers(len(pool)))]

    # -- statistics -----------------------------------------------------------

    def total_blocks(self) -> int:
        return len(self._locations)

    def bytes_per_node(self) -> Dict[Host, int]:
        """Physical bytes stored on each DataNode (the balancer's view)."""
        usage: Dict[Host, int] = {host: 0 for host in self.datanodes}
        for location in self._locations.values():
            for replica in location.replicas:
                if replica in usage:
                    usage[replica] += location.block.size
        return usage

    def blocks_on(self, host: Host) -> List[BlockLocation]:
        """All block locations holding a replica on ``host``."""
        return [location for location in self._locations.values()
                if host in location.replicas]

    def used_bytes(self, with_replicas: bool = True) -> int:
        """Logical bytes stored, or physical bytes including replicas."""
        total = 0
        for location in self._locations.values():
            factor = len(location.replicas) if with_replicas else 1
            total += location.block.size * factor
        return total
