"""Block and replica-location value objects."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.cluster.topology import Host

_block_ids = itertools.count(1)


@dataclass
class Block:
    """One HDFS block of a file.

    ``index`` is the block's position within its file; ``size`` is the
    actual byte count (the final block of a file is usually short).
    """

    path: str
    index: int
    size: int
    block_id: int = field(default_factory=lambda: next(_block_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"block size must be >= 0, got {self.size}")

    def __hash__(self) -> int:
        return hash(self.block_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Block({self.path}#{self.index}, {self.size}B, id={self.block_id})"


@dataclass
class BlockLocation:
    """The replica set of a block, in pipeline order."""

    block: Block
    replicas: List[Host]

    @property
    def primary(self) -> Host:
        """First replica (pipeline head; the writer's local copy)."""
        return self.replicas[0]

    def on_host(self, host: Host) -> bool:
        return host in self.replicas

    def on_rack(self, rack: int) -> bool:
        return any(replica.rack == rack for replica in self.replicas)

    def racks(self) -> List[int]:
        return sorted({replica.rack for replica in self.replicas})
