"""The HDFS balancer: background block movement.

Long-lived clusters accumulate storage skew (new nodes arrive empty,
hot writers fill their local disks first).  The balancer daemon moves
block replicas from over- to under-utilised DataNodes, throttled by
``dfs.datanode.balance.bandwidthPerSec`` — a steady background traffic
component captures on production clusters contain and healthy-testbed
captures don't.

:class:`Balancer` implements the planning loop at block granularity:

1. compute per-node utilisation from the NameNode's block map,
2. while the spread exceeds ``threshold`` × mean: pick the fullest
   node, move one of its blocks to the emptiest node that does not
   already hold a replica,
3. each move is one DataNode→DataNode flow (service ``balancer``)
   capped at the balancer bandwidth, executed with bounded concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.topology import Host
from repro.cluster.units import MB
from repro.hdfs.blocks import BlockLocation
from repro.hdfs.namenode import NameNode
from repro.net.backend import TransportBackend
from repro.simkit.core import Simulator
from repro.simkit.resources import Resource


@dataclass
class BalancerReport:
    """Outcome of one balancing run."""

    moves: int = 0
    bytes_moved: float = 0.0
    initial_spread: float = 0.0
    final_spread: float = 0.0
    plan: List[Tuple[int, str, str]] = field(default_factory=list)


class Balancer:
    """Plans and executes block moves over the flow network."""

    def __init__(self, sim: Simulator, net: TransportBackend, namenode: NameNode,
                 bandwidth: float = 10.0 * MB, threshold: float = 0.1,
                 max_concurrent_moves: int = 2, max_moves: int = 1000):
        if bandwidth <= 0:
            raise ValueError("balancer bandwidth must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.sim = sim
        self.net = net
        self.namenode = namenode
        self.bandwidth = bandwidth
        self.threshold = threshold
        self.max_moves = max_moves
        self._streams = Resource(sim, max_concurrent_moves, name="balancer")

    # -- planning ------------------------------------------------------------------

    def spread(self) -> float:
        """Max-minus-min node utilisation in bytes."""
        usage = self.namenode.bytes_per_node()
        if not usage:
            return 0.0
        values = list(usage.values())
        return float(max(values) - min(values))

    def plan(self) -> List[Tuple[BlockLocation, Host, Host]]:
        """(block, source, target) moves to bring the spread in band.

        Works on a copy of the utilisation map so planning is pure; the
        actual replica-set updates happen as moves complete.
        """
        usage = dict(self.namenode.bytes_per_node())
        if not usage:
            return []
        moves: List[Tuple[BlockLocation, Host, Host]] = []
        moved_blocks: set = set()
        mean = sum(usage.values()) / len(usage)
        band = self.threshold * max(mean, 1.0)
        while len(moves) < self.max_moves:
            fullest = max(usage, key=lambda h: (usage[h], h.name))
            emptiest = min(usage, key=lambda h: (usage[h], h.name))
            if usage[fullest] - usage[emptiest] <= band:
                break
            candidate = self._pick_block(fullest, emptiest, moved_blocks)
            if candidate is None:
                break
            moves.append((candidate, fullest, emptiest))
            moved_blocks.add(candidate.block.block_id)
            usage[fullest] -= candidate.block.size
            usage[emptiest] += candidate.block.size
        return moves

    def _pick_block(self, source: Host, target: Host,
                    excluded: set) -> Optional[BlockLocation]:
        for location in self.namenode.blocks_on(source):
            if location.block.block_id in excluded:
                continue
            if target in location.replicas:
                continue
            if location.block.size <= 0:
                continue
            return location
        return None

    # -- execution --------------------------------------------------------------------

    def run_once(self) -> Tuple["BalancerReport", object]:
        """Start one balancing round; returns (report, done_process).

        The report fills in as moves complete; join the returned process
        (or run the simulator to quiescence) before reading it.
        """
        report = BalancerReport(initial_spread=self.spread())
        moves = self.plan()
        process = self.sim.process(self._execute(moves, report),
                                   name="balancer-round")
        return report, process

    def _execute(self, moves, report: BalancerReport):
        children = [
            self.sim.process(self._move(location, source, target, report),
                             name=f"balancer-move[{location.block.block_id}]")
            for location, source, target in moves
        ]
        if children:
            yield self.sim.all_of(children)
        report.final_spread = self.spread()
        return report

    def _move(self, location: BlockLocation, source: Host, target: Host,
              report: BalancerReport):
        yield self._streams.acquire()
        try:
            flow = self.net.start_flow(
                source, target, location.block.size, max_rate=self.bandwidth,
                metadata={
                    "component": TrafficComponent.HDFS_WRITE.value,
                    "service": "balancer",
                    "block_id": location.block.block_id,
                    "src_port": ports.ephemeral_port(
                        f"bal-{location.block.block_id}-{source.name}"),
                    "dst_port": ports.DATANODE_XFER,
                })
            yield flow.done
            # Commit the move in the block map.
            if source in location.replicas and target not in location.replicas:
                location.replicas.remove(source)
                location.replicas.append(target)
            report.moves += 1
            report.bytes_moved += location.block.size
            report.plan.append(
                (location.block.block_id, source.name, target.name))
        finally:
            self._streams.release()
