"""HDFS substrate: NameNode, DataNodes, placement, client pipelines.

Implements the HDFS mechanisms that shape Hadoop's network footprint:

* **block placement** — the default rack-aware policy (first replica on
  the writer, second off-rack, third co-racked with the second), which
  determines how much write traffic crosses the core;
* **write pipelines** — each block travels hop-by-hop through its
  replica chain, so a replication factor of *r* puts *r − 1* copies of
  every block on the wire (*r − 2* of them crossing racks, typically);
* **read locality** — node-local reads touch only the disk, rack-local
  and off-rack reads become network flows, so map-task placement decides
  the HDFS-read component's volume;
* **control plane** — periodic DataNode→NameNode heartbeats.

The NameNode keeps a plain in-memory namespace; persistence (fsimage /
edit log) is out of scope because it creates no network traffic.
"""

from repro.hdfs.balancer import Balancer, BalancerReport
from repro.hdfs.blocks import Block, BlockLocation
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import BlockLostError, NameNode
from repro.hdfs.placement import DefaultPlacementPolicy, PlacementPolicy, RandomPlacementPolicy

__all__ = [
    "Balancer",
    "BalancerReport",
    "Block",
    "BlockLocation",
    "BlockLostError",
    "DataNode",
    "DefaultPlacementPolicy",
    "DfsClient",
    "NameNode",
    "PlacementPolicy",
    "RandomPlacementPolicy",
]
