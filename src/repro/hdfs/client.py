"""The DFS client: write pipelines, reads and bulk pre-loading.

This is where HDFS's network footprint is actually produced:

* :meth:`DfsClient.write_file` splits data into blocks and, per block,
  drives the replication pipeline — one flow per pipeline hop, each
  carrying the full block.  The first hop is host-local whenever the
  writer is a DataNode (Hadoop writes replica 1 locally), so with
  replication *r* a task's output puts *r − 1* block copies on the wire.
* :meth:`DfsClient.read_block` asks the NameNode for the closest
  replica; node-local reads stay on the disk, others become one
  DataNode→reader flow capped at the serving disk's read rate.
* :meth:`DfsClient.preload_file` installs a file's blocks *without*
  traffic — the "input data already in HDFS" starting condition of the
  paper's capture runs.

All processes are simkit generators; callers ``yield`` them.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.config import HadoopConfig
from repro.cluster.topology import Host
from repro.hdfs.blocks import Block, BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.net.backend import FlowRequest, TransportBackend
from repro.simkit.core import Simulator


class DfsClient:
    """Client-side HDFS operations over the flow network."""

    def __init__(self, sim: Simulator, net: TransportBackend, namenode: NameNode,
                 datanodes: Dict[Host, DataNode], config: HadoopConfig):
        self.sim = sim
        self.net = net
        self.namenode = namenode
        self.datanodes = datanodes
        self.config = config
        # Per-client write ids keep port tags (and hence trace bytes)
        # independent of how many writes earlier clusters in this
        # process performed.
        self._write_ids = itertools.count(1)
        self.telemetry = sim.telemetry
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._c_blocks_written = registry.counter("hdfs.blocks_written")
        self._c_bytes_written = registry.counter("hdfs.bytes_written")
        self._c_blocks_read = registry.counter("hdfs.blocks_read")
        self._c_bytes_read = registry.counter("hdfs.bytes_read")

    # -- write path -------------------------------------------------------------

    def write_file(self, path: str, size: int, writer: Host,
                   job_id: str = "", replication: Optional[int] = None,
                   component: str = TrafficComponent.HDFS_WRITE.value,
                   parent_span=None):
        """Generator process: write ``size`` bytes to ``path`` from ``writer``.

        Blocks are written sequentially (as ``DFSOutputStream`` does at
        block granularity); within a block all pipeline hops run
        concurrently, which models the streaming pipeline at flow
        granularity.  Returns the list of `BlockLocation`s written.
        """
        if size < 0:
            raise ValueError(f"cannot write negative size {size}")
        replication = replication if replication is not None else self.config.replication
        self.namenode.create_file(path)
        locations: List[BlockLocation] = []
        for block_size in split_into_blocks(size, self.config.block_size):
            location = self.namenode.allocate_block(path, block_size, replication, writer)
            locations.append(location)
            yield from self._write_pipeline(location, writer, job_id, component,
                                            parent_span=parent_span)
        return locations

    def _write_pipeline(self, location: BlockLocation, writer: Host,
                        job_id: str, component: str, parent_span=None):
        """Run one block's replication pipeline; waits for all hops."""
        write_id = next(self._write_ids)
        self._c_blocks_written.value += 1
        self._c_bytes_written.value += location.block.size
        span = parent_span
        if self._tracer.enabled:
            span = self._tracer.start(
                "hdfs_write", f"block[{location.block.block_id}]",
                self.sim.now, parent=parent_span,
                size=location.block.size,
                replicas=len(location.replicas), job_id=job_id)
        chain = [writer] + list(location.replicas)
        # Writer == first replica (the normal case) collapses hop 0 to local I/O.
        if chain[0] == chain[1]:
            chain = chain[1:]
        # The pipeline hops all start at the same instant — a textbook
        # flow wave — so they are admitted in one batched call: paths
        # resolve in one pass and the wave shares one rate
        # recomputation.
        requests = []
        for hop_index, (src, dst) in enumerate(zip(chain[:-1], chain[1:])):
            datanode = self.datanodes.get(dst)
            max_rate = datanode.disk_write_rate if datanode else None
            requests.append(FlowRequest(
                src, dst, location.block.size, max_rate=max_rate,
                metadata={
                    "component": component,
                    "service": "dfs-write-pipeline",
                    "job_id": job_id,
                    "block_id": location.block.block_id,
                    "hop": hop_index,
                    "src_port": ports.ephemeral_port(
                        f"write-{write_id}-{hop_index}-{src.name}"),
                    "dst_port": ports.DATANODE_XFER,
                }, parent_span=span))
        if writer in location.replicas:
            # Replica 1 is written through the local disk.
            datanode = self.datanodes.get(writer)
            rate = datanode.disk_write_rate if datanode else None
            requests.append(FlowRequest(
                writer, writer, location.block.size, max_rate=rate,
                metadata={"component": component, "service": "dfs-write-local",
                          "job_id": job_id, "block_id": location.block.block_id},
                parent_span=span))
        waits = [flow.done for flow in self.net.start_flows(requests)]
        if waits:
            yield self.sim.all_of(waits)
        if self._tracer.enabled:
            self._tracer.end(span, self.sim.now)

    # -- read path --------------------------------------------------------------

    def read_block(self, block: Block, reader: Host, job_id: str = "",
                   component: str = TrafficComponent.HDFS_READ.value,
                   parent_span=None):
        """Generator process: read one block to ``reader``.

        Returns the serving replica host (useful for locality stats).
        """
        replica = self.namenode.choose_replica_for_read(block, reader)
        datanode = self.datanodes.get(replica)
        max_rate = datanode.disk_read_rate if datanode else None
        self._c_blocks_read.value += 1
        self._c_bytes_read.value += block.size
        flow = self.net.start_flow(
            replica, reader, block.size, max_rate=max_rate,
            metadata={
                "component": component,
                "service": "dfs-read",
                "job_id": job_id,
                "block_id": block.block_id,
                "src_port": ports.DATANODE_XFER,
                "dst_port": ports.ephemeral_port(
                    f"read-{block.block_id}-{reader.name}"),
            }, parent_span=parent_span)
        yield flow.done
        return replica

    def read_file(self, path: str, reader: Host, job_id: str = ""):
        """Generator process: read a whole file block-by-block."""
        served_by = []
        for block in self.namenode.blocks_of(path):
            replica = yield from self.read_block(block, reader, job_id=job_id)
            served_by.append(replica)
        return served_by

    # -- pre-loading --------------------------------------------------------------

    def preload_file(self, path: str, size: int,
                     replication: Optional[int] = None) -> List[BlockLocation]:
        """Install a file's blocks instantly, with placement but no traffic.

        Models input data loaded before the capture window opens.
        """
        replication = replication if replication is not None else self.config.replication
        self.namenode.create_file(path)
        locations = []
        for block_size in split_into_blocks(size, self.config.block_size):
            locations.append(
                self.namenode.allocate_block(path, block_size, replication, writer=None))
        return locations


def split_into_blocks(size: int, block_size: int) -> List[int]:
    """Block sizes of a file: full blocks plus a short tail.

    A zero-byte file still occupies one empty block (HDFS creates the
    file entry; our callers rely on at least one block existing).
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    size = int(size)
    if size == 0:
        return [0]
    full, tail = divmod(size, block_size)
    return [block_size] * full + ([tail] if tail else [])
