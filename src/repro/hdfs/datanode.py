"""DataNode: disk rates and the heartbeat control plane."""

from __future__ import annotations

from typing import Optional

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.topology import Host
from repro.net.backend import TransportBackend
from repro.simkit.core import Simulator


class DataNode:
    """A storage daemon bound to one host.

    Holds the host's disk throughput (used as rate caps on block reads
    and pipeline writes) and emits the periodic heartbeat flows to the
    NameNode that make up part of Hadoop's control-plane traffic.
    """

    def __init__(self, sim: Simulator, net: TransportBackend, host: Host,
                 namenode_host: Host, disk_read_rate: float, disk_write_rate: float,
                 heartbeat_interval: float = 3.0, heartbeat_bytes: int = 512):
        if disk_read_rate <= 0 or disk_write_rate <= 0:
            raise ValueError("disk rates must be positive")
        self.sim = sim
        self.net = net
        self.host = host
        self.namenode_host = namenode_host
        self.disk_read_rate = disk_read_rate
        self.disk_write_rate = disk_write_rate
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_bytes = heartbeat_bytes
        self.heartbeats_sent = 0
        self._running = False
        # The heartbeat port tag is a pure function of the host name;
        # hashing it once instead of every beat keeps the control-plane
        # producer off the hot path's profile.
        self._heartbeat_port = ports.ephemeral_port(f"dn-hb-{self.host.name}")

    def start_heartbeats(self) -> None:
        """Begin the periodic DataNode→NameNode heartbeat process."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._heartbeat_loop(), name=f"dn-heartbeat[{self.host}]")

    def stop_heartbeats(self) -> None:
        """Stop after the current interval (lets the event queue drain)."""
        self._running = False

    def _heartbeat_loop(self):
        while self._running:
            if self.host != self.namenode_host:
                self.net.start_flow(
                    self.host, self.namenode_host, self.heartbeat_bytes,
                    metadata={
                        "component": TrafficComponent.CONTROL.value,
                        "service": "dn-heartbeat",
                        "src_port": self._heartbeat_port,
                        "dst_port": ports.NAMENODE_RPC,
                    })
            self.heartbeats_sent += 1
            yield self.sim.timeout(self.heartbeat_interval)
