"""Job arrival processes."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class ArrivalProcess:
    """Interface: produce ``n`` submission times (sorted, seconds)."""

    def sample(self, n: int, rng: np.random.Generator) -> List[float]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` jobs/second (exponential gaps)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def sample(self, n: int, rng: np.random.Generator) -> List[float]:
        gaps = rng.exponential(scale=1.0 / self.rate, size=n)
        times = np.cumsum(gaps)
        return [float(t) for t in times - times[0]] if n else []


class UniformArrivals(ArrivalProcess):
    """Evenly spaced submissions across a window of ``span`` seconds."""

    def __init__(self, span: float):
        if span < 0:
            raise ValueError(f"span must be >= 0, got {span}")
        self.span = span

    def sample(self, n: int, rng: np.random.Generator) -> List[float]:
        if n <= 1:
            return [0.0] * n
        return [self.span * i / (n - 1) for i in range(n)]


class FixedArrivals(ArrivalProcess):
    """Replay an explicit submission-time trace."""

    def __init__(self, times: Sequence[float]):
        self.times = sorted(float(t) for t in times)
        if self.times and self.times[0] < 0:
            raise ValueError("arrival times must be >= 0")

    def sample(self, n: int, rng: np.random.Generator) -> List[float]:
        if n > len(self.times):
            raise ValueError(
                f"trace holds {len(self.times)} arrivals, {n} requested")
        return self.times[:n]


class DiurnalArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with a sinusoidal daily rate.

    The rate oscillates between ``base_rate * (1 - amplitude)`` and
    ``base_rate * (1 + amplitude)`` over a ``period`` (default 24 h,
    scaled down in simulations), peaking at ``peak_time``.  Sampled by
    thinning a homogeneous Poisson process at the peak rate.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.8,
                 period: float = 86_400.0, peak_time: float = 0.0):
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.peak_time = peak_time

    def rate_at(self, t: float) -> float:
        phase = 2.0 * np.pi * (t - self.peak_time) / self.period
        return self.base_rate * (1.0 + self.amplitude * np.cos(phase))

    def sample(self, n: int, rng: np.random.Generator) -> List[float]:
        peak = self.base_rate * (1.0 + self.amplitude)
        times: List[float] = []
        t = 0.0
        while len(times) < n:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() < self.rate_at(t) / peak:  # thinning
                times.append(t)
        origin = times[0] if times else 0.0
        return [time - origin for time in times]
