"""WorkloadSuite: sample a job mix, run it concurrently, capture it all.

A suite is a weighted mix of (job kind, input size) entries plus an
arrival process.  ``run()`` samples a concrete schedule, executes it on
one cluster (so jobs contend for containers and links, unlike the
isolated single-job captures), and returns per-job results/traces plus
cluster-level aggregates — the input for multi-tenant traffic studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.jct import makespan
from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import GB
from repro.jobs import make_job
from repro.jobs.base import JobSpec
from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.result import JobResult
from repro.workloads.arrivals import ArrivalProcess, UniformArrivals


@dataclass(frozen=True)
class MixEntry:
    """One job template in a mix."""

    kind: str
    input_gb: float
    weight: float = 1.0
    queue: str = "default"

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"mix weight must be positive, got {self.weight}")
        if self.input_gb < 0:
            raise ValueError(f"input_gb must be >= 0, got {self.input_gb}")


@dataclass
class SuiteResult:
    """Everything a suite run produced."""

    results: List[JobResult]
    traces: List[JobTrace]
    arrival_times: List[float]
    makespan: float

    def traces_by_kind(self) -> Dict[str, List[JobTrace]]:
        grouped: Dict[str, List[JobTrace]] = {}
        for trace in self.traces:
            grouped.setdefault(trace.meta.job_kind, []).append(trace)
        return grouped

    def mean_jct(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.completion_time for r in self.results) / len(self.results)

    def total_bytes(self) -> float:
        # Per-job traces share overlapping control flows; count each
        # distinct flow once.
        seen = set()
        total = 0.0
        for trace in self.traces:
            for flow in trace.flows:
                if flow.flow_id not in seen:
                    seen.add(flow.flow_id)
                    total += flow.size
        return total


class WorkloadSuite:
    """A weighted job mix with an arrival process."""

    def __init__(self, mix: Sequence[MixEntry],
                 arrivals: Optional[ArrivalProcess] = None,
                 name: str = "suite"):
        if not mix:
            raise ValueError("a workload suite needs at least one mix entry")
        self.mix = list(mix)
        self.arrivals = arrivals or UniformArrivals(span=30.0)
        self.name = name

    def sample_jobs(self, count: int, rng: np.random.Generator) -> List[JobSpec]:
        """Draw ``count`` job specs from the weighted mix."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        weights = np.array([entry.weight for entry in self.mix], dtype=float)
        weights /= weights.sum()
        indices = rng.choice(len(self.mix), size=count, p=weights)
        specs = []
        for order, index in enumerate(indices):
            entry = self.mix[int(index)]
            specs.append(make_job(entry.kind, input_gb=entry.input_gb,
                                  queue=entry.queue,
                                  job_id=f"{self.name}_{order:03d}_{entry.kind}"))
        return specs

    def run(self, count: int, cluster_spec: Optional[ClusterSpec] = None,
            config: Optional[HadoopConfig] = None, seed: int = 0,
            queue_capacities: Optional[Dict[str, float]] = None) -> SuiteResult:
        """Sample, schedule and execute ``count`` jobs on one cluster."""
        rng = np.random.default_rng(seed)
        specs = self.sample_jobs(count, rng)
        arrival_times = self.arrivals.sample(count, rng)
        cluster = HadoopCluster(cluster_spec or ClusterSpec(num_nodes=8),
                                config or HadoopConfig(), seed=seed,
                                queue_capacities=queue_capacities)
        results, traces = cluster.run(specs, arrival_times=arrival_times)
        return SuiteResult(results=results, traces=traces,
                           arrival_times=list(arrival_times),
                           makespan=makespan(results))
