"""Multi-job workload suites: arrival processes and job mixes.

Single-job captures (the core Keddah methodology) miss an axis real
clusters have: *concurrency*.  This package layers it on:

* :mod:`repro.workloads.arrivals` — inter-arrival processes (Poisson,
  uniform, fixed trace);
* :mod:`repro.workloads.suite` — :class:`WorkloadSuite`: a weighted job
  mix sampled into a concrete submission schedule, run on one
  :class:`~repro.mapreduce.cluster.HadoopCluster`, yielding per-job
  traces plus cluster-level load statistics;
* :mod:`repro.workloads.hibench` — the canonical mixes (HiBench-like
  micro mix, a shuffle-heavy mix, an analytics mix).
"""

from repro.workloads.arrivals import DiurnalArrivals, FixedArrivals, PoissonArrivals, UniformArrivals
from repro.workloads.hibench import ANALYTICS_MIX, MICRO_MIX, SHUFFLE_HEAVY_MIX
from repro.workloads.suite import SuiteResult, WorkloadSuite

__all__ = [
    "ANALYTICS_MIX",
    "DiurnalArrivals",
    "FixedArrivals",
    "MICRO_MIX",
    "PoissonArrivals",
    "SHUFFLE_HEAVY_MIX",
    "SuiteResult",
    "UniformArrivals",
    "WorkloadSuite",
]
