"""Canonical job mixes (HiBench-flavoured).

Three mixes spanning the traffic space:

* :data:`MICRO_MIX` — the balanced micro-benchmark mix the paper's
  single-job analysis draws from;
* :data:`SHUFFLE_HEAVY_MIX` — sort-dominated, stresses the fabric's
  bisection (the worst case for oversubscribed trees);
* :data:`ANALYTICS_MIX` — iterative/aggregation analytics, stresses
  HDFS reads and the control plane more than the shuffle.
"""

from repro.workloads.suite import MixEntry

MICRO_MIX = [
    MixEntry("terasort", input_gb=0.5, weight=2.0),
    MixEntry("wordcount", input_gb=0.5, weight=2.0),
    MixEntry("grep", input_gb=0.5, weight=1.0),
    MixEntry("teragen", input_gb=0.25, weight=1.0),
]

SHUFFLE_HEAVY_MIX = [
    MixEntry("terasort", input_gb=1.0, weight=3.0),
    MixEntry("sort", input_gb=0.5, weight=2.0),
    MixEntry("join", input_gb=0.5, weight=1.0),
]

ANALYTICS_MIX = [
    MixEntry("pagerank", input_gb=0.25, weight=2.0),
    MixEntry("kmeans", input_gb=0.5, weight=2.0),
    MixEntry("wordcount", input_gb=0.5, weight=1.0),
    MixEntry("grep", input_gb=1.0, weight=1.0),
]
