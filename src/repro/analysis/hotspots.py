"""Per-host traffic concentration (hotspot) analysis.

Hadoop traffic is rarely uniform across hosts: reducers concentrate
shuffle ingress, popular replicas concentrate read egress, and a single
hot host can bottleneck a job that looks fine in aggregate.  This
module decomposes a trace by endpoint and quantifies the imbalance.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.tables import Table
from repro.capture.records import JobTrace


def per_host_traffic(trace: JobTrace,
                     component: Optional[str] = None) -> Dict[str, Dict[str, float]]:
    """Bytes sent/received (and flow counts) per host."""
    flows = trace.flows if component is None else trace.component(component)
    stats: Dict[str, Dict[str, float]] = {}

    def entry(host: str) -> Dict[str, float]:
        return stats.setdefault(host, {"tx_bytes": 0.0, "rx_bytes": 0.0,
                                       "tx_flows": 0.0, "rx_flows": 0.0})

    for flow in flows:
        sender = entry(flow.src)
        sender["tx_bytes"] += flow.size
        sender["tx_flows"] += 1
        receiver = entry(flow.dst)
        receiver["rx_bytes"] += flow.size
        receiver["rx_flows"] += 1
    return stats


def imbalance_factor(trace: JobTrace, direction: str = "rx",
                     component: Optional[str] = None) -> float:
    """Max-over-mean of per-host bytes (1.0 = perfectly even).

    ``direction`` is ``"rx"`` or ``"tx"``.  Returns 0 for empty traces.
    """
    if direction not in ("rx", "tx"):
        raise ValueError(f"direction must be 'rx' or 'tx', got {direction!r}")
    stats = per_host_traffic(trace, component)
    if not stats:
        return 0.0
    key = f"{direction}_bytes"
    values = np.array([host[key] for host in stats.values()])
    mean = values.mean()
    if mean <= 0:
        return 0.0
    return float(values.max() / mean)


def hotspot_table(trace: JobTrace, component: Optional[str] = None,
                  top: int = 10) -> Table:
    """The top-N hosts by received bytes, with their send side."""
    stats = per_host_traffic(trace, component)
    mib = 1024.0 * 1024.0
    scope = component or "all components"
    table = Table(
        title=f"traffic hotspots ({scope}): {trace.meta.job_id}",
        headers=["host", "rx MiB", "rx flows", "tx MiB", "tx flows"])
    ranked = sorted(stats.items(), key=lambda item: -item[1]["rx_bytes"])
    for host, values in ranked[:top]:
        table.add_row(host,
                      round(values["rx_bytes"] / mib, 2),
                      int(values["rx_flows"]),
                      round(values["tx_bytes"] / mib, 2),
                      int(values["tx_flows"]))
    table.notes.append(
        f"rx imbalance {imbalance_factor(trace, 'rx', component):.2f}x, "
        f"tx imbalance {imbalance_factor(trace, 'tx', component):.2f}x "
        "(max over mean)")
    return table
