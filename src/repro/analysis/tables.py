"""Plain-text rendering of experiment tables and figure series.

Benchmarks regenerate the paper's tables and figures as text: a
:class:`Table` holds the rows; :func:`render_table` pretty-prints them;
:func:`render_cdf_series` prints the (x, F(x)) series a CDF figure
would plot, which is the most faithful text form of a distribution
plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np


@dataclass
class Table:
    """A titled grid of rows (the unit every experiment produces)."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        return render_table(self)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(table: Table) -> str:
    """Monospace-aligned rendering with title and footnotes."""
    cells = [[_format_cell(v) for v in row] for row in table.rows]
    widths = [len(header) for header in table.headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    parts = [f"== {table.title} =="]
    parts.append(line(table.headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in cells)
    for note in table.notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)


def cdf_table(title: str, samples: Sequence[float], fitted_cdf=None,
              points: int = 12, unit: str = "") -> Table:
    """The series a CDF figure would plot, as a :class:`Table`.

    Emits ``points`` quantile rows: value, empirical F, and (when a
    fitted distribution is supplied) the model CDF at the same value —
    side-by-side exactly like the paper's empirical-vs-fit CDF figures.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    headers = ["p", f"value{f' ({unit})' if unit else ''}", "ecdf"]
    if fitted_cdf is not None:
        headers.append("fit")
    table = Table(title=title, headers=headers)
    if data.size == 0:
        table.notes.append("no samples")
        return table
    probs = np.linspace(1.0 / points, 1.0, points)
    for p in probs:
        value = float(np.quantile(data, p))
        ecdf = float(np.searchsorted(data, value, side="right")) / data.size
        row = [f"{p:.2f}", value, round(ecdf, 4)]
        if fitted_cdf is not None:
            row.append(round(float(fitted_cdf(value)), 4))
        table.add_row(*row)
    return table


def render_cdf_series(title: str, samples: Sequence[float],
                      fitted_cdf=None, points: int = 12,
                      unit: str = "") -> str:
    """Rendered form of :func:`cdf_table`."""
    return render_table(cdf_table(title, samples, fitted_cdf, points, unit))
