"""Job-completion-time statistics."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.mapreduce.result import JobResult
from repro.modeling.empirical import summarize


def jct_summary(results: Iterable[JobResult]) -> Dict[str, Dict[str, float]]:
    """Per-job-kind completion-time summary statistics."""
    by_kind: Dict[str, List[float]] = {}
    for result in results:
        by_kind.setdefault(result.kind, []).append(result.completion_time)
    return {kind: summarize(values) for kind, values in sorted(by_kind.items())}


def makespan(results: Iterable[JobResult]) -> float:
    """End-to-end span of a batch: last finish minus first submit."""
    results = list(results)
    if not results:
        return 0.0
    return (max(result.finish_time for result in results)
            - min(result.submit_time for result in results))


def slowdown(results: Iterable[JobResult], baselines: Dict[str, float]) -> Dict[str, float]:
    """Per-job slowdown against isolated-run baselines (keyed by job_id)."""
    factors = {}
    for result in results:
        base = baselines.get(result.job_id)
        if base and base > 0:
            factors[result.job_id] = result.completion_time / base
    return factors
