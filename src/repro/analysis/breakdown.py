"""Traffic decomposition by Hadoop component."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.capture.records import JobTrace, TrafficComponent

ALL_COMPONENTS = [c.value for c in TrafficComponent.data_components()] + [
    TrafficComponent.CONTROL.value, TrafficComponent.OTHER.value]


def component_breakdown(trace: JobTrace) -> Dict[str, Dict[str, float]]:
    """Per-component bytes, flow counts and share of total volume."""
    total = trace.total_bytes() or 1.0
    breakdown: Dict[str, Dict[str, float]] = {}
    for component in ALL_COMPONENTS:
        flows = trace.component(component)
        volume = sum(flow.size for flow in flows)
        breakdown[component] = {
            "bytes": volume,
            "flows": float(len(flows)),
            "share": volume / total,
            "cross_rack_bytes": sum(f.size for f in flows if f.cross_rack),
        }
    return breakdown


def cross_rack_fraction(trace: JobTrace,
                        component: Optional[str] = None) -> float:
    """Fraction of (component) bytes that cross rack boundaries."""
    total = trace.total_bytes(component)
    if total == 0:
        return 0.0
    return trace.cross_rack_bytes(component) / total


def aggregate_breakdowns(traces: Iterable[JobTrace]) -> Dict[str, Dict[str, float]]:
    """Sum component breakdowns over several traces (e.g. repeats)."""
    totals: Dict[str, Dict[str, float]] = {
        component: {"bytes": 0.0, "flows": 0.0, "cross_rack_bytes": 0.0}
        for component in ALL_COMPONENTS
    }
    grand_total = 0.0
    for trace in traces:
        for component, stats in component_breakdown(trace).items():
            totals[component]["bytes"] += stats["bytes"]
            totals[component]["flows"] += stats["flows"]
            totals[component]["cross_rack_bytes"] += stats["cross_rack_bytes"]
            grand_total += stats["bytes"]
    for stats in totals.values():
        stats["share"] = stats["bytes"] / grand_total if grand_total else 0.0
    return totals
