"""Traffic matrices: who talks to whom, at host and rack granularity.

The demand matrix is what a topology designer actually consumes from a
traffic study: rack-to-rack volume determines bisection provisioning,
host-to-host sparsity determines whether ECMP spreads load.  This
module builds both from a trace and renders them as tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import Table
from repro.capture.records import JobTrace


def host_matrix(trace: JobTrace,
                component: Optional[str] = None) -> Dict[Tuple[str, str], float]:
    """Bytes per (src host, dst host) pair."""
    flows = trace.flows if component is None else trace.component(component)
    matrix: Dict[Tuple[str, str], float] = {}
    for flow in flows:
        key = (flow.src, flow.dst)
        matrix[key] = matrix.get(key, 0.0) + flow.size
    return matrix


def rack_matrix(trace: JobTrace,
                component: Optional[str] = None) -> Dict[Tuple[int, int], float]:
    """Bytes per (src rack, dst rack) pair."""
    flows = trace.flows if component is None else trace.component(component)
    matrix: Dict[Tuple[int, int], float] = {}
    for flow in flows:
        key = (flow.src_rack, flow.dst_rack)
        matrix[key] = matrix.get(key, 0.0) + flow.size
    return matrix


def matrix_sparsity(matrix: Dict[Tuple, float], endpoints: int) -> float:
    """Fraction of possible ordered pairs carrying any traffic."""
    if endpoints < 2:
        return 0.0
    possible = endpoints * (endpoints - 1)
    active = sum(1 for (src, dst), volume in matrix.items()
                 if src != dst and volume > 0)
    return active / possible


def rack_matrix_table(trace: JobTrace,
                      component: Optional[str] = None) -> Table:
    """The rack-to-rack demand matrix as a table (MiB cells)."""
    matrix = rack_matrix(trace, component)
    racks = sorted({rack for pair in matrix for rack in pair})
    mib = 1024.0 * 1024.0
    scope = component or "all components"
    table = Table(
        title=f"rack traffic matrix ({scope}): {trace.meta.job_id}",
        headers=["src\\dst"] + [f"rack {rack}" for rack in racks])
    for src in racks:
        row: List = [f"rack {src}"]
        for dst in racks:
            row.append(round(matrix.get((src, dst), 0.0) / mib, 1))
        table.add_row(*row)
    total = sum(matrix.values())
    cross = sum(v for (s, d), v in matrix.items() if s != d)
    if total > 0:
        table.notes.append(f"cross-rack share {cross / total:.1%} of "
                           f"{total / mib:.0f} MiB")
    return table
