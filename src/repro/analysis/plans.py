"""Per-stage analysis of workload-plan captures.

A plan trace is one combined capture spanning every stage of a
:class:`~repro.jobs.plan.WorkloadPlan` run; the stage manifest lives
under ``meta.extra['plan']`` (written by
:meth:`~repro.mapreduce.cluster.HadoopCluster.trace_for_plan`).  This
module attributes the trace's flows back to stages by job id and turns
the manifest into the per-stage JCT / volume breakdown table the
multi-stage experiments print — plus the benchmark-style single score
(TPCx-HS HSph) for plans that declare a ``score_rule``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.tables import Table
from repro.capture.records import FlowRecord, JobTrace, TrafficComponent


def is_plan_trace(trace: JobTrace) -> bool:
    """True when the trace is a combined workload-plan capture."""
    return "plan" in trace.meta.extra


def plan_meta(trace: JobTrace) -> Dict[str, Any]:
    """The stage manifest of a plan trace (raises on single-job traces)."""
    if not is_plan_trace(trace):
        raise ValueError(f"{trace.meta.job_id} is not a plan capture")
    return trace.meta.extra["plan"]


def stage_flows(trace: JobTrace) -> Dict[str, List[FlowRecord]]:
    """Flows grouped by stage name, with shared traffic under ``(shared)``.

    Attribution is exact, not windowed: every data flow carries its
    stage's job id.  Unattributed control-plane flows (heartbeats) are
    genuinely shared across concurrently-running stages, so they get
    their own bucket instead of being charged to an arbitrary stage.
    """
    meta = plan_meta(trace)
    by_job_id = {entry["job_id"]: entry["name"] for entry in meta["stages"]}
    groups: Dict[str, List[FlowRecord]] = {entry["name"]: []
                                           for entry in meta["stages"]}
    groups["(shared)"] = []
    for flow in trace.flows:
        groups[by_job_id.get(flow.job_id, "(shared)")].append(flow)
    return groups


def stage_breakdown(trace: JobTrace) -> List[Dict[str, Any]]:
    """Per-stage rows: window, JCT, task counts and on-wire volumes.

    Scheduling facts (windows, task counts, HDFS-level byte counters)
    come from the stage manifest; wire volumes from the attributed
    flows.  Skipped stages (upstream failure) appear with null
    timings so a failed plan's table still accounts for every stage.
    """
    meta = plan_meta(trace)
    flows = stage_flows(trace)
    rows: List[Dict[str, Any]] = []
    for entry in meta["stages"]:
        own = flows.get(entry["name"], [])
        shuffle = sum(f.size for f in own
                      if f.component == TrafficComponent.SHUFFLE.value)
        row: Dict[str, Any] = {
            "stage": entry["name"],
            "kind": entry["kind"],
            "status": entry["status"],
            "deps": list(entry.get("deps", [])),
            "submit_time": entry.get("submit_time"),
            "finish_time": entry.get("finish_time"),
            "jct": entry.get("completion_time"),
            "num_maps": entry.get("num_maps", 0),
            "num_reduces": entry.get("num_reduces", 0),
            "input_bytes": entry.get("input_bytes", 0.0),
            "shuffle_bytes": shuffle,
            "output_bytes": entry.get("output_bytes", 0.0),
            "wire_bytes": sum(f.size for f in own),
            "wire_flows": len(own),
        }
        rows.append(row)
    shared = flows["(shared)"]
    rows.append({
        "stage": "(shared)", "kind": "-", "status": "-", "deps": [],
        "submit_time": None, "finish_time": None, "jct": None,
        "num_maps": 0, "num_reduces": 0, "input_bytes": 0.0,
        "shuffle_bytes": 0.0, "output_bytes": 0.0,
        "wire_bytes": sum(f.size for f in shared),
        "wire_flows": len(shared),
    })
    return rows


def stage_table(trace: JobTrace) -> Table:
    """The per-stage breakdown as a printable :class:`Table`."""
    meta = plan_meta(trace)
    table = Table(
        title=f"Plan {meta['name']} — per-stage breakdown",
        headers=["stage", "kind", "status", "deps", "jct_s",
                 "maps", "reduces", "input_mb", "shuffle_mb",
                 "wire_mb", "flows"])
    mb = 1024.0 * 1024.0
    for row in stage_breakdown(trace):
        table.add_row(
            row["stage"], row["kind"], row["status"],
            "+".join(row["deps"]) if row["deps"] else "-",
            row["jct"] if row["jct"] is not None else "-",
            row["num_maps"], row["num_reduces"],
            row["input_bytes"] / mb, row["shuffle_bytes"] / mb,
            row["wire_bytes"] / mb, row["wire_flows"])
    completion = trace.meta.extra.get("completion_time")
    if completion is not None:
        table.notes.append(f"plan completion: {completion:.3f} s")
    score = plan_score(trace)
    if score is not None:
        table.notes.append(
            f"score ({meta['score_rule']}): {score:.4f}")
    return table


def plan_score(trace: JobTrace) -> Optional[float]:
    """The plan's single benchmark score, per its ``score_rule``.

    ``hsph`` is the TPCx-HS metric shape: scale factor over total
    elapsed hours, so doubling the data at constant wall-clock doubles
    the score.  Plans without a score rule return None.
    """
    meta = plan_meta(trace)
    rule = meta.get("score_rule", "")
    if rule == "hsph":
        elapsed = trace.meta.extra.get("completion_time", 0.0)
        if elapsed <= 0:
            return None
        scale = float(meta.get("params", {}).get("scale", 1.0))
        return scale / (elapsed / 3600.0)
    if rule:
        raise ValueError(f"unknown plan score rule {rule!r}")
    return None
