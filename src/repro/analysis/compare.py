"""Captured-vs-synthetic validation (the toolchain's fidelity check).

For each traffic component present in either trace, compare:

* flow-size populations (two-sample KS),
* inter-arrival populations (two-sample KS),
* total volume and flow count (relative errors).

This is the E10 experiment's engine: a faithful generator keeps the KS
distances small and the count/volume errors near zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capture.records import JobTrace, TrafficComponent
from repro.modeling.ks import KsResult, ks_two_sample


@dataclass
class ComponentComparison:
    """One component's captured-vs-synthetic scores."""

    component: str
    captured_flows: int
    synthetic_flows: int
    captured_bytes: float
    synthetic_bytes: float
    size_ks: Optional[KsResult] = None
    interarrival_ks: Optional[KsResult] = None

    @property
    def count_error(self) -> float:
        """Relative flow-count error (synthetic vs captured)."""
        if self.captured_flows == 0:
            return 0.0 if self.synthetic_flows == 0 else float("inf")
        return abs(self.synthetic_flows - self.captured_flows) / self.captured_flows

    @property
    def volume_error(self) -> float:
        if self.captured_bytes == 0:
            return 0.0 if self.synthetic_bytes == 0 else float("inf")
        return abs(self.synthetic_bytes - self.captured_bytes) / self.captured_bytes


def compare_traces(captured: JobTrace, synthetic: JobTrace,
                   components: Optional[List[str]] = None,
                   ) -> Dict[str, ComponentComparison]:
    """Component-wise comparison of two traces."""
    if components is None:
        components = sorted(set(captured.components_present())
                            | set(synthetic.components_present()))
    results: Dict[str, ComponentComparison] = {}
    for component in components:
        cap_sizes = captured.flow_sizes(component)
        syn_sizes = synthetic.flow_sizes(component)
        comparison = ComponentComparison(
            component=component,
            captured_flows=len(cap_sizes),
            synthetic_flows=len(syn_sizes),
            captured_bytes=sum(cap_sizes),
            synthetic_bytes=sum(syn_sizes),
        )
        if cap_sizes and syn_sizes:
            comparison.size_ks = ks_two_sample(cap_sizes, syn_sizes)
            cap_gaps = captured.interarrivals(component)
            syn_gaps = synthetic.interarrivals(component)
            if cap_gaps and syn_gaps:
                comparison.interarrival_ks = ks_two_sample(cap_gaps, syn_gaps)
        results[component] = comparison
    return results


@dataclass
class ValidationSummary:
    """Aggregate fidelity scores over all data components."""

    mean_size_ks: float
    mean_count_error: float
    mean_volume_error: float
    components: Dict[str, ComponentComparison] = field(default_factory=dict)


def validation_summary(captured: JobTrace, synthetic: JobTrace) -> ValidationSummary:
    """Fidelity over the three data-plane components."""
    data_components = [c.value for c in TrafficComponent.data_components()]
    comparisons = compare_traces(captured, synthetic, components=data_components)
    active = [c for c in comparisons.values()
              if c.captured_flows > 0 or c.synthetic_flows > 0]
    size_ks = [c.size_ks.statistic for c in active if c.size_ks is not None]
    count_errors = [c.count_error for c in active if c.count_error != float("inf")]
    volume_errors = [c.volume_error for c in active if c.volume_error != float("inf")]
    return ValidationSummary(
        mean_size_ks=sum(size_ks) / len(size_ks) if size_ks else 0.0,
        mean_count_error=(sum(count_errors) / len(count_errors)
                          if count_errors else 0.0),
        mean_volume_error=(sum(volume_errors) / len(volume_errors)
                           if volume_errors else 0.0),
        components=comparisons,
    )
