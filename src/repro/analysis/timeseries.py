"""Traffic-over-time series: the job's phase structure on the wire.

A MapReduce job's traffic is not stationary — HDFS reads front-load the
timeline, the shuffle ramps up as maps commit (gated by slow-start),
and the output writes cluster at the end.  This module bins a trace
into per-component throughput series, which is both a paper-style
figure (E15) and a quick visual sanity check on captures.

Bytes are attributed to bins by overlap: a flow spanning several bins
contributes proportionally to each (fluid assumption, matching the
network model).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.tables import Table
from repro.capture.records import JobTrace, TrafficComponent


def throughput_series(trace: JobTrace, bin_seconds: float = 1.0,
                      components: Optional[Sequence[str]] = None,
                      ) -> Dict[str, np.ndarray]:
    """Per-component bytes-per-bin arrays plus the shared time axis.

    Returns a dict with a ``"time"`` key (bin start offsets relative to
    job submission) and one array per requested component.
    """
    if bin_seconds <= 0:
        raise ValueError(f"bin_seconds must be positive, got {bin_seconds}")
    if components is None:
        components = [c.value for c in TrafficComponent.data_components()]
    origin = trace.meta.submit_time
    horizon = max((flow.end for flow in trace.flows), default=origin) - origin
    bins = max(1, int(np.ceil(horizon / bin_seconds)) + 1)
    time_axis = np.arange(bins) * bin_seconds
    series: Dict[str, np.ndarray] = {"time": time_axis}
    for component in components:
        series[component] = np.zeros(bins)
    for flow in trace.flows:
        if flow.component not in components:
            continue
        start = flow.start - origin
        end = flow.end - origin
        _spread(series[flow.component], start, end, flow.size, bin_seconds)
    return series


def _spread(array: np.ndarray, start: float, end: float, size: float,
            bin_seconds: float) -> None:
    """Distribute ``size`` bytes over [start, end) proportionally."""
    if size <= 0:
        return
    if end <= start:
        index = min(int(start / bin_seconds), array.size - 1)
        array[index] += size
        return
    rate = size / (end - start)
    first = int(start / bin_seconds)
    last = min(int(np.ceil(end / bin_seconds)), array.size)
    for index in range(first, last):
        bin_start = index * bin_seconds
        bin_end = bin_start + bin_seconds
        overlap = max(0.0, min(end, bin_end) - max(start, bin_start))
        array[index] += rate * overlap


def phase_profile(trace: JobTrace, bin_seconds: float = 1.0) -> Table:
    """The E15 table: per-bin throughput of every data component."""
    series = throughput_series(trace, bin_seconds=bin_seconds)
    components = [key for key in series if key != "time"]
    table = Table(
        title=(f"traffic over time: {trace.meta.job_id} "
               f"({trace.meta.job_kind}), {bin_seconds}s bins"),
        headers=["t (s)"] + [f"{c} MiB/s" for c in components])
    mib = 1024.0 * 1024.0
    for index, t in enumerate(series["time"]):
        row = [float(t)]
        for component in components:
            row.append(round(float(series[component][index]) / bin_seconds / mib, 3))
        table.add_row(*row)
    return table


def component_peak_times(trace: JobTrace, bin_seconds: float = 1.0
                         ) -> Dict[str, float]:
    """Bin-start time of each component's throughput peak."""
    series = throughput_series(trace, bin_seconds=bin_seconds)
    peaks = {}
    for component, values in series.items():
        if component == "time" or not np.any(values > 0):
            continue
        peaks[component] = float(series["time"][int(np.argmax(values))])
    return peaks


def component_activity_spans(trace: JobTrace) -> Dict[str, tuple]:
    """(first activity, last activity) per data component, job-relative."""
    spans = {}
    origin = trace.meta.submit_time
    for component in (c.value for c in TrafficComponent.data_components()):
        flows = trace.component(component)
        if not flows:
            continue
        spans[component] = (min(f.start for f in flows) - origin,
                            max(f.end for f in flows) - origin)
    return spans
