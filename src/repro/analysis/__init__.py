"""Analysis: breakdowns, comparisons and table rendering.

The quantitative layer between raw traces and the experiment outputs:

* :mod:`repro.analysis.tables` — plain-text table/series rendering used
  by every benchmark to print the rows a paper figure would plot;
* :mod:`repro.analysis.breakdown` — per-component traffic volume and
  flow-count decompositions of job traces;
* :mod:`repro.analysis.compare` — captured-vs-synthetic validation
  (two-sample KS per component metric, volume/count errors);
* :mod:`repro.analysis.jct` — job-completion-time statistics;
* :mod:`repro.analysis.plans` — per-stage attribution and scoring of
  workload-plan captures.
"""

from repro.analysis.breakdown import component_breakdown, cross_rack_fraction
from repro.analysis.compare import compare_traces, validation_summary
from repro.analysis.hotspots import hotspot_table, imbalance_factor, per_host_traffic
from repro.analysis.jct import jct_summary
from repro.analysis.matrix import host_matrix, matrix_sparsity, rack_matrix, rack_matrix_table
from repro.analysis.plans import is_plan_trace, plan_score, stage_breakdown, stage_table
from repro.analysis.tables import Table, cdf_table, render_cdf_series, render_table

__all__ = [
    "Table",
    "cdf_table",
    "compare_traces",
    "component_breakdown",
    "cross_rack_fraction",
    "hotspot_table",
    "imbalance_factor",
    "per_host_traffic",
    "host_matrix",
    "is_plan_trace",
    "jct_summary",
    "matrix_sparsity",
    "plan_score",
    "stage_breakdown",
    "stage_table",
    "rack_matrix",
    "rack_matrix_table",
    "render_cdf_series",
    "render_table",
    "validation_summary",
]
