"""Top-level convenience API: the three Keddah stages in one import.

    from repro import run_capture, fit_job_model, generate_trace, replay_trace

    traces = [run_capture("terasort", input_gb=gb, nodes=16, seed=1)
              for gb in (1.0, 2.0, 5.0)]
    model = fit_job_model(traces)
    synthetic = generate_trace(model, input_gb=10.0, seed=2)
    report = replay_trace(synthetic)
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.generation.generator import generate_trace
from repro.generation.replay import replay_trace
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.modeling.model import fit_job_model
from repro.obs.telemetry import Telemetry

__all__ = [
    "fit_job_model",
    "generate_trace",
    "replay_trace",
    "run_capture",
    "run_capture_campaign",
]


def run_capture(job: Optional[str] = None, input_gb: float = 1.0,
                nodes: int = 16, seed: int = 0,
                config: Optional[HadoopConfig] = None,
                cluster_spec: Optional[ClusterSpec] = None,
                hosts_per_rack: int = 4,
                telemetry: Optional[Telemetry] = None,
                backend: Optional[str] = None,
                engine: Optional[str] = None,
                plan: Optional[object] = None,
                plan_params: Optional[dict] = None,
                **job_kwargs) -> JobTrace:
    """Run one job or workload plan on a fresh cluster; return its capture.

    ``job`` is a catalog kind (``terasort``, ``wordcount``, ...);
    ``job_kwargs`` pass through to :func:`repro.jobs.make_job` (e.g.
    ``num_reducers=32`` or ``iterations=5``).  Alternatively ``plan``
    names a registered :class:`~repro.jobs.plan.WorkloadPlan` (or is
    one), built with ``plan_params`` and run as a multi-stage DAG;
    exactly one of ``job``/``plan`` must be given.  ``cluster_spec``
    wins over the ``nodes``/``hosts_per_rack`` shortcuts when provided.
    ``telemetry`` (e.g. ``Telemetry.enabled_in_memory()``) observes the
    run without changing the captured bytes.  ``backend`` selects the
    transport substrate (``fluid``/``analytic``/``record``, see
    :mod:`repro.net.backend`); ``engine`` the fluid implementation
    (``scalar``/``vectorized``, bit-identical results).  Either
    overrides the corresponding ``cluster_spec`` field when given.
    """
    if (job is None) == (plan is None):
        raise ValueError("run_capture needs exactly one of job= or plan=")
    spec = cluster_spec or ClusterSpec(num_nodes=nodes,
                                       hosts_per_rack=hosts_per_rack)
    if backend is not None and backend != spec.backend:
        spec = replace(spec, backend=backend)
    if engine is not None and engine != spec.engine:
        spec = replace(spec, engine=engine)
    cluster = HadoopCluster(spec, config or HadoopConfig(), seed=seed,
                            telemetry=telemetry)
    if plan is not None:
        from repro.jobs.plan import WorkloadPlan, make_plan

        if job_kwargs:
            raise ValueError("job kwargs do not apply to plan captures; "
                             "use plan_params=")
        if not isinstance(plan, WorkloadPlan):
            plan = make_plan(str(plan), **(plan_params or {}))
        elif plan_params:
            raise ValueError("plan_params only apply when plan is a name")
        _, trace = cluster.run_plan(plan)
        return trace
    job_spec = make_job(job, input_gb=input_gb, **job_kwargs)
    _, traces = cluster.run([job_spec])
    return traces[0]


def run_capture_campaign(job: str, input_sizes_gb: Sequence[float],
                         nodes: int = 16, seed: int = 0, repeats: int = 1,
                         config: Optional[HadoopConfig] = None,
                         workers: int = 1,
                         backend: str = "fluid",
                         engine: str = "scalar",
                         **job_kwargs) -> List[JobTrace]:
    """Capture one job kind across input sizes (the paper's sweep unit).

    Each (size, repeat) pair runs on a fresh cluster with a seed from
    :func:`repro.experiments.runner.derive_seed`, so runs are
    independent and the whole campaign is reproducible from ``seed``.
    Points are resolved through the campaign cache hierarchy (the
    process-local memo and, when configured via
    ``KEDDAH_CAPTURE_STORE``, the persistent capture store);
    ``workers > 1`` fans cache misses out across processes with
    flow-for-flow identical output.
    """
    from repro.experiments.campaigns import make_runner
    from repro.experiments.runner import CapturePoint, derive_seed

    spec = ClusterSpec(num_nodes=nodes, hosts_per_rack=4, backend=backend,
                       engine=engine)
    hadoop = config or HadoopConfig()
    points = [CapturePoint.from_configs(
                  job, input_gb, derive_seed(seed, size_index, repeat),
                  spec, hadoop, job_kwargs)
              for size_index, input_gb in enumerate(input_sizes_gb)
              for repeat in range(repeats)]
    return [trace for _, trace in make_runner(workers).run(points)]
