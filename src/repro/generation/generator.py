"""Synthetic trace generation from fitted traffic models.

For each component the generator:

1. predicts the flow count for the requested input size from the
   model's count law;
2. samples that many flow sizes from the fitted size distribution and
   (optionally) rescales them so the component's total volume matches
   the volume law — Keddah's volume-preservation step, which keeps the
   generated load faithful even when the size distribution's tail is
   imperfect;
3. samples inter-arrival gaps and accumulates them from the component's
   fitted start offset;
4. places endpoints on the cluster's worker hosts with the component's
   role structure (distinct src/dst, service ports set so the capture
   classifier works on synthetic traces too).

The result is a :class:`~repro.capture.records.JobTrace` flagged
``synthetic`` in its metadata, directly comparable (and replayable)
against captured traces.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace, TrafficComponent
from repro.cluster import ports
from repro.cluster.units import GB
from repro.modeling.model import ComponentModel, JobTrafficModel

_COMPONENT_PORTS = {
    TrafficComponent.HDFS_READ.value: (ports.DATANODE_XFER, None),
    TrafficComponent.HDFS_WRITE.value: (None, ports.DATANODE_XFER),
    TrafficComponent.SHUFFLE.value: (ports.SHUFFLE_HANDLER, None),
    TrafficComponent.CONTROL.value: (None, ports.RM_TRACKER),
}


def worker_names(model: JobTrafficModel) -> List[Tuple[str, int]]:
    """(host name, rack) pairs of the modelled cluster's workers.

    Mirrors :class:`~repro.mapreduce.cluster.HadoopCluster`'s layout —
    workers are hosts 0..N-1 and the master is the extra last host — so
    generated traces replay directly onto a topology built from the
    model's ClusterSpec.
    """
    num_nodes = int(model.cluster.get("num_nodes", 16))
    hosts_per_rack = int(model.cluster.get("hosts_per_rack", 8))
    names = []
    for index in range(num_nodes):
        names.append((f"h{index:03d}", index // hosts_per_rack))
    return names


def generate_trace(model: JobTrafficModel, input_gb: float, seed: int = 0,
                   job_id: str = "", calibrate_volume: bool = True,
                   arrivals: str = "gaps") -> JobTrace:
    """Sample one synthetic job trace for ``input_gb`` of input.

    ``arrivals`` selects the start-time model: ``"gaps"`` accumulates
    sampled inter-arrival gaps (the classic renewal model), while
    ``"curve"`` samples positions from the fitted empirical arrival
    curve scaled to the predicted activity span — preserving the
    time-varying intensity (bursts, waves) the renewal model flattens.
    """
    if input_gb < 0:
        raise ValueError(f"input_gb must be >= 0, got {input_gb}")
    if arrivals not in ("gaps", "curve"):
        raise ValueError(f"arrivals must be 'gaps' or 'curve', got {arrivals!r}")
    rng = np.random.default_rng(seed)
    workers = worker_names(model)
    if len(workers) < 2:
        raise ValueError("generation needs at least two worker hosts")
    job_id = job_id or f"synthetic_{model.kind}_{seed}"

    flows: List[FlowRecord] = []
    for name, component in sorted(model.components.items()):
        flows.extend(_generate_component(component, input_gb, rng, workers,
                                         job_id, calibrate_volume, arrivals))
    flows.sort(key=lambda flow: (flow.start, flow.flow_id))
    finish = max((flow.end for flow in flows), default=0.0)
    meta = CaptureMeta(
        job_id=job_id,
        job_kind=model.kind,
        input_bytes=input_gb * GB,
        cluster=dict(model.cluster),
        hadoop=dict(model.hadoop),
        seed=seed,
        submit_time=0.0,
        finish_time=max(finish, model.expected_duration(input_gb)),
        extra={"synthetic": True, "generator": "keddah", "input_gb": input_gb},
    )
    return JobTrace(meta=meta, flows=flows)


def _generate_component(component: ComponentModel, input_gb: float,
                        rng: np.random.Generator,
                        workers: List[Tuple[str, int]],
                        job_id: str, calibrate_volume: bool,
                        arrivals: str = "gaps") -> List[FlowRecord]:
    count = component.expected_count(input_gb)
    if count <= 0:
        return []
    sizes = np.maximum(component.size_dist.sample(count, rng), 0.0)
    # Volume calibration pins the component total to the volume law,
    # but only for parametric size distributions: degenerate and
    # empirical populations are exact (block-size atoms, jar blocks),
    # and rescaling would shift them off their atoms — visibly wrong
    # in a two-sample comparison against a capture.
    if calibrate_volume and getattr(component.size_dist, "kind", "") == "parametric":
        target = component.expected_volume(input_gb)
        total = float(sizes.sum())
        if total > 0 and target > 0:
            sizes = sizes * (target / total)
    offset = max(component.start_law.predict_nonneg(input_gb), 0.0)
    if arrivals == "curve" and component.arrival_curve is not None:
        span = max(component.span_law.predict_nonneg(input_gb), 0.0)
        positions = np.sort(
            np.clip(component.arrival_curve.sample(count, rng), 0.0, 1.0))
        starts = offset + positions * span
    else:
        gaps = np.maximum(component.interarrival_dist.sample(count, rng), 0.0)
        starts = offset + np.cumsum(gaps) - gaps[0]

    src_port, dst_port = _COMPONENT_PORTS.get(component.component, (None, None))
    flows = []
    for index in range(count):
        src, dst = _pick_pair(workers, rng)
        flows.append(FlowRecord(
            src=src[0], dst=dst[0],
            src_rack=src[1], dst_rack=dst[1],
            src_port=src_port if src_port is not None
            else ports.ephemeral_port(f"{job_id}-{component.component}-{index}-s"),
            dst_port=dst_port if dst_port is not None
            else ports.ephemeral_port(f"{job_id}-{component.component}-{index}-d"),
            size=float(sizes[index]),
            start=float(starts[index]),
            end=float(starts[index]),  # duration is assigned by replay
            component=component.component,
            service="synthetic",
            job_id=job_id,
        ))
    return flows


def _pick_pair(workers: List[Tuple[str, int]],
               rng: np.random.Generator) -> Tuple[Tuple[str, int], Tuple[str, int]]:
    src_index = int(rng.integers(len(workers)))
    dst_index = int(rng.integers(len(workers) - 1))
    if dst_index >= src_index:
        dst_index += 1
    return workers[src_index], workers[dst_index]
