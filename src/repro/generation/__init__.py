"""Keddah stage 3 — reproducing traffic.

Turns fitted :class:`~repro.modeling.model.JobTrafficModel` objects back
into traffic:

* :mod:`repro.generation.generator` — sample a synthetic
  :class:`~repro.capture.records.JobTrace` (flow sizes, start times and
  endpoint placement per component) for an arbitrary input size,
  including sizes never captured (via the model's scaling laws);
* :mod:`repro.generation.replay` — drive a trace (captured or
  synthetic) through the flow-level network simulator and report
  completion times and link utilisation;
* :mod:`repro.generation.export` — emit schedules for external
  simulators: a generic CSV schedule, an ns-3 C++ application, and an
  ns-3-readable flow schedule.
"""

from repro.generation.crosstraffic import (
    CrossTrafficSpec,
    generate_cross_traffic,
    replay_with_cross_traffic,
)
from repro.generation.export import to_flow_schedule_csv, to_json, to_ns3_script, to_omnet_ini
from repro.generation.generator import generate_trace, worker_names
from repro.generation.replay import ReplayReport, replay_trace
from repro.generation.workload import ScheduledJob, generate_workload_trace, split_workload_trace

__all__ = [
    "CrossTrafficSpec",
    "ReplayReport",
    "generate_cross_traffic",
    "replay_with_cross_traffic",
    "ScheduledJob",
    "generate_workload_trace",
    "split_workload_trace",
    "generate_trace",
    "replay_trace",
    "to_flow_schedule_csv",
    "to_json",
    "to_ns3_script",
    "to_omnet_ini",
    "worker_names",
]
