"""Replay traces through the flow-level network simulator.

Replay is the toolchain's validation loop: drive a trace (captured or
model-generated) through a clean network built from the trace's own
cluster description and measure what the network does with it —
per-flow completion times, makespan, per-component volumes and link
utilisation.  Comparing the replay of a captured trace against the
replay of a generated one is experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capture.collector import FlowCollector
from repro.capture.records import FlowRecord, JobTrace
from repro.cluster.config import ClusterSpec
from repro.cluster.topology import Host, Topology, build_topology
from repro.net.backend import make_backend
from repro.simkit import Simulator
from repro.simkit.rng import stable_hash


@dataclass
class ReplayReport:
    """What the network did with a replayed trace."""

    makespan: float
    total_bytes: float
    flow_count: int
    component_bytes: Dict[str, float] = field(default_factory=dict)
    flow_durations: List[float] = field(default_factory=list)
    mean_link_utilisation: float = 0.0
    peak_link_utilisation: float = 0.0
    records: List[FlowRecord] = field(default_factory=list)

    @property
    def mean_flow_duration(self) -> float:
        if not self.flow_durations:
            return 0.0
        return sum(self.flow_durations) / len(self.flow_durations)


def replay_trace(trace: JobTrace, topology: Optional[Topology] = None,
                 time_scale: float = 1.0,
                 backend: str = "fluid",
                 engine: str = "scalar") -> ReplayReport:
    """Replay every flow of ``trace`` at its recorded start time.

    The topology defaults to one built from the trace's cluster spec.
    Host names missing from the topology (e.g. a capture from foreign
    hardware) are mapped onto workers by a stable hash, preserving
    src/dst distinctness where possible.  ``time_scale`` stretches or
    compresses the schedule (1.0 = as captured).  ``backend`` selects
    the transport substrate replayed against; ``record`` turns replay
    into a zero-cost re-emission of the trace's own schedule (what the
    ns-3/OMNeT exporters consume).  ``engine`` picks the fluid
    implementation (``scalar``/``vectorized``; identical results).
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    if topology is None:
        spec = ClusterSpec.from_dict(trace.meta.cluster) if trace.meta.cluster else ClusterSpec()
        topology = build_topology(spec.topology, num_hosts=spec.num_nodes + 1,
                                  hosts_per_rack=spec.hosts_per_rack,
                                  host_gbps=spec.host_gbps,
                                  oversubscription=spec.oversubscription)
    sim = Simulator()
    net = make_backend(backend, sim, topology, engine=engine)
    collector = FlowCollector(net)
    by_name = {host.name: host for host in topology.hosts}
    workers = topology.hosts[1:] if len(topology.hosts) > 1 else topology.hosts

    def resolve(name: str, avoid: Optional[Host] = None) -> Host:
        host = by_name.get(name)
        if host is not None:
            return host
        # Unknown host (foreign capture): map stably onto a worker,
        # stepping once to preserve src != dst where the record had it.
        host = workers[stable_hash(name) % len(workers)]
        if host == avoid and len(workers) > 1:
            host = workers[(stable_hash(name) % len(workers) + 1) % len(workers)]
        return host

    origin = min((flow.start for flow in trace.flows), default=0.0)
    for record in trace.flows:
        dst = resolve(record.dst)
        src = resolve(record.src, avoid=dst if record.src != record.dst else None)
        if record.src != record.dst and src == dst:
            dst = resolve(record.dst, avoid=src)
        sim.schedule(
            (record.start - origin) * time_scale,
            net.start_flow, src, dst, record.size, None,
            {
                "component": record.component,
                "service": record.service or "replay",
                "job_id": record.job_id,
                "src_port": record.src_port,
                "dst_port": record.dst_port,
            })
    sim.run()

    component_bytes: Dict[str, float] = {}
    durations = []
    for replayed in collector.records:
        component_bytes[replayed.component] = (
            component_bytes.get(replayed.component, 0.0) + replayed.size)
        durations.append(replayed.duration)
    utilisations = [net.utilisation(link) for link in net.link_bytes]
    return ReplayReport(
        makespan=sim.now,
        total_bytes=collector.total_bytes(),
        flow_count=len(collector.records),
        component_bytes=component_bytes,
        flow_durations=durations,
        mean_link_utilisation=(sum(utilisations) / len(utilisations)
                               if utilisations else 0.0),
        peak_link_utilisation=max(utilisations, default=0.0),
        records=collector.records,
    )
