"""Synthetic multi-job workload generation.

Composes per-kind traffic models (a :class:`~repro.modeling.bundle.
ModelBundle`) into one cluster-level trace: each scheduled job is
sampled independently from its model and shifted to its submission
time, and the union is a workload a network simulator can replay —
the "realistic scenarios" the paper's abstract promises without
running a single Hadoop job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.cluster.units import GB
from repro.generation.generator import generate_trace
from repro.modeling.bundle import ModelBundle


@dataclass(frozen=True)
class ScheduledJob:
    """One job in a synthetic workload schedule."""

    kind: str
    input_gb: float
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.input_gb < 0:
            raise ValueError(f"input_gb must be >= 0, got {self.input_gb}")
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")


def generate_workload_trace(bundle: ModelBundle,
                            schedule: Sequence[ScheduledJob],
                            seed: int = 0,
                            workload_id: str = "synthetic-workload",
                            arrivals: str = "curve",
                            ) -> JobTrace:
    """Sample every scheduled job and merge into one workload trace.

    Each job draws from its kind's model with a derived seed (so the
    workload is reproducible and jobs are independent), has its flow
    timeline shifted by ``start_s``, and keeps a per-job ``job_id`` so
    the merged trace can still be cut per job downstream.  ``arrivals``
    defaults to the empirical arrival curve — multi-job studies depend
    on realistic temporal overlap between jobs.
    """
    if not schedule:
        raise ValueError("workload schedule is empty")
    flows: List[FlowRecord] = []
    total_input = 0.0
    finish = 0.0
    for index, job in enumerate(schedule):
        model = bundle.get(job.kind)
        job_trace = generate_trace(
            model, input_gb=job.input_gb, seed=seed * 9973 + index,
            job_id=f"{workload_id}/{index:03d}-{job.kind}",
            arrivals=arrivals)
        total_input += job.input_gb * GB
        for flow in job_trace.flows:
            data = flow.to_dict()
            data["start"] = flow.start + job.start_s
            data["end"] = flow.end + job.start_s
            flows.append(FlowRecord.from_dict(data))
        finish = max(finish, job.start_s + job_trace.meta.finish_time)
    flows.sort(key=lambda flow: (flow.start, flow.flow_id))
    meta = CaptureMeta(
        job_id=workload_id,
        job_kind="workload",
        input_bytes=total_input,
        cluster=dict(bundle.get(schedule[0].kind).cluster),
        hadoop=dict(bundle.get(schedule[0].kind).hadoop),
        seed=seed,
        submit_time=0.0,
        finish_time=finish,
        extra={
            "synthetic": True,
            "jobs": [{"kind": job.kind, "input_gb": job.input_gb,
                      "start_s": job.start_s} for job in schedule],
        },
    )
    return JobTrace(meta=meta, flows=flows)


def split_workload_trace(trace: JobTrace) -> List[JobTrace]:
    """Cut a merged workload trace back into per-job traces."""
    by_job: dict = {}
    for flow in trace.flows:
        by_job.setdefault(flow.job_id, []).append(flow)
    jobs_meta = trace.meta.extra.get("jobs", [])
    traces = []
    for index, (job_id, flows) in enumerate(sorted(by_job.items())):
        info = jobs_meta[index] if index < len(jobs_meta) else {}
        meta = CaptureMeta(
            job_id=job_id,
            job_kind=info.get("kind", job_id.rsplit("-", 1)[-1]),
            input_bytes=float(info.get("input_gb", 0.0)) * GB,
            cluster=dict(trace.meta.cluster),
            hadoop=dict(trace.meta.hadoop),
            seed=trace.meta.seed,
            submit_time=min(flow.start for flow in flows),
            finish_time=max(flow.end for flow in flows),
            extra={"synthetic": True},
        )
        traces.append(JobTrace(meta=meta, flows=sorted(
            flows, key=lambda f: (f.start, f.flow_id))))
    return traces
