"""Background cross-traffic for interference studies.

Keddah's purpose is to put *realistic* Hadoop traffic into network
simulations — which usually means alongside other tenants' traffic.
This module synthesises background load (constant-rate chunk trains or
exponential on/off bursts between random host pairs) and composes it
with a Hadoop trace so a replay measures the interference both ways:
how cross traffic inflates Hadoop flow completion times, and how much
capacity the Hadoop job steals from the background flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.cluster import ports
from repro.cluster.units import MB
from repro.generation.replay import ReplayReport, replay_trace

CROSS_TRAFFIC_SERVICE = "cross-traffic"


@dataclass(frozen=True)
class CrossTrafficSpec:
    """Shape of the background load."""

    load_fraction: float = 0.2      # of one host link per generator pair
    pairs: int = 4                  # concurrent src->dst generator pairs
    chunk_bytes: float = 4.0 * MB   # per-flow transfer unit
    pattern: str = "constant"       # "constant" | "onoff"
    on_mean_s: float = 2.0          # mean burst length (onoff)
    off_mean_s: float = 2.0         # mean silence length (onoff)
    link_rate: float = 1e9 / 8.0    # bytes/s of the access links

    def __post_init__(self) -> None:
        if not 0.0 < self.load_fraction <= 1.0:
            raise ValueError("load_fraction must be in (0, 1]")
        if self.pairs < 1:
            raise ValueError("pairs must be >= 1")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.pattern not in ("constant", "onoff"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.on_mean_s <= 0 or self.off_mean_s <= 0:
            raise ValueError("on/off means must be positive")


def generate_cross_traffic(hosts: Sequence[Tuple[str, int]], duration: float,
                           spec: Optional[CrossTrafficSpec] = None,
                           seed: int = 0) -> List[FlowRecord]:
    """Background flow records covering ``[0, duration]``.

    ``hosts`` are (name, rack) pairs (e.g. from
    :func:`repro.generation.generator.worker_names`).  Each generator
    pair emits chunk flows whose *offered* rate averages
    ``load_fraction`` of one link; on/off bursts offer line-rate chunks
    during on-periods only.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if len(hosts) < 2:
        raise ValueError("need at least two hosts for cross traffic")
    spec = spec or CrossTrafficSpec()
    rng = np.random.default_rng(seed)
    flows: List[FlowRecord] = []
    for pair_index in range(spec.pairs):
        src_index = int(rng.integers(len(hosts)))
        dst_index = int(rng.integers(len(hosts) - 1))
        if dst_index >= src_index:
            dst_index += 1
        src, dst = hosts[src_index], hosts[dst_index]
        flows.extend(_pair_schedule(src, dst, duration, spec, rng, pair_index))
    flows.sort(key=lambda flow: flow.start)
    return flows


def _pair_schedule(src, dst, duration, spec: CrossTrafficSpec,
                   rng: np.random.Generator, pair_index: int) -> List[FlowRecord]:
    offered = spec.load_fraction * spec.link_rate
    gap = spec.chunk_bytes / offered  # constant pattern inter-chunk gap
    flows = []
    t = float(rng.random() * gap)  # desynchronise pairs
    burst_until = None
    while t < duration:
        if spec.pattern == "onoff":
            if burst_until is None or t >= burst_until:
                t += float(rng.exponential(spec.off_mean_s))
                burst_until = t + float(rng.exponential(spec.on_mean_s))
                if t >= duration:
                    break
            step = spec.chunk_bytes / spec.link_rate  # line-rate inside bursts
        else:
            step = gap
        flows.append(FlowRecord(
            src=src[0], dst=dst[0], src_rack=src[1], dst_rack=dst[1],
            src_port=ports.ephemeral_port(f"xt-{pair_index}-{len(flows)}-s"),
            dst_port=ports.ephemeral_port(f"xt-{pair_index}-{len(flows)}-d"),
            size=spec.chunk_bytes, start=t, end=t,
            component="other", service=CROSS_TRAFFIC_SERVICE))
        t += step
    return flows


@dataclass
class InterferenceReport:
    """Clean vs contended replay of the same Hadoop trace."""

    clean: ReplayReport
    contended: ReplayReport
    hadoop_mean_fct_clean: float
    hadoop_mean_fct_contended: float
    cross_traffic_bytes: float

    @property
    def fct_inflation(self) -> float:
        """Mean Hadoop flow-duration inflation factor (>= ~1)."""
        if self.hadoop_mean_fct_clean <= 0:
            return 1.0
        return self.hadoop_mean_fct_contended / self.hadoop_mean_fct_clean


def replay_with_cross_traffic(trace: JobTrace,
                              spec: Optional[CrossTrafficSpec] = None,
                              seed: int = 0) -> InterferenceReport:
    """Replay a trace twice — alone, and against background load."""
    clean = replay_trace(trace)
    hosts = sorted({(f.src, f.src_rack) for f in trace.flows}
                   | {(f.dst, f.dst_rack) for f in trace.flows})
    background = generate_cross_traffic(hosts, duration=clean.makespan,
                                        spec=spec, seed=seed)
    combined = JobTrace(
        meta=CaptureMeta(
            job_id=f"{trace.meta.job_id}+cross",
            job_kind=trace.meta.job_kind,
            input_bytes=trace.meta.input_bytes,
            cluster=dict(trace.meta.cluster),
            hadoop=dict(trace.meta.hadoop),
            extra={"cross_traffic": True}),
        flows=sorted(list(trace.flows) + background,
                     key=lambda f: (f.start, f.flow_id)))
    contended = replay_trace(combined)

    def hadoop_mean_fct(report: ReplayReport) -> float:
        durations = [r.duration for r in report.records
                     if r.service != CROSS_TRAFFIC_SERVICE]
        return sum(durations) / len(durations) if durations else 0.0

    return InterferenceReport(
        clean=clean,
        contended=contended,
        hadoop_mean_fct_clean=hadoop_mean_fct(clean),
        hadoop_mean_fct_contended=hadoop_mean_fct(contended),
        cross_traffic_bytes=sum(f.size for f in background),
    )
