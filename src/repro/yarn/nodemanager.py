"""NodeManager: per-node capacity tracking and the heartbeat loop."""

from __future__ import annotations

from typing import Set

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.topology import Host
from repro.net.backend import TransportBackend
from repro.simkit.core import Simulator
from repro.yarn.containers import Container, Resources
from repro.yarn.resourcemanager import ResourceManager


class NodeManager:
    """One node's container host, heartbeating the ResourceManager.

    Heartbeats are staggered per node (``phase``) so the cluster does
    not fire them in lock-step; each beat carries a small control flow
    to the RM tracker port and triggers an allocation round.
    """

    def __init__(self, sim: Simulator, net: TransportBackend, host: Host,
                 rm: ResourceManager, capacity: Resources,
                 heartbeat_interval: float = 1.0, phase: float = 0.0,
                 heartbeat_bytes: int = 512):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.sim = sim
        self.net = net
        self.host = host
        self.rm = rm
        self.capacity = capacity
        self.free = capacity
        self.running: Set[Container] = set()
        self.heartbeat_interval = heartbeat_interval
        self.phase = phase % heartbeat_interval if heartbeat_interval > 0 else 0.0
        self.heartbeat_bytes = heartbeat_bytes
        self.heartbeats_sent = 0
        self._running = False
        rm.register_node(self)

    # -- capacity ---------------------------------------------------------------

    def allocate(self, container: Container) -> None:
        if not container.resources.fits_in(self.free):
            raise ValueError(
                f"container {container!r} does not fit on {self.host} (free {self.free})")
        self.free = self.free - container.resources
        self.running.add(container)

    def deallocate(self, container: Container) -> None:
        if container not in self.running:
            raise KeyError(f"container {container!r} not running on {self.host}")
        self.running.remove(container)
        self.free = self.free + container.resources

    @property
    def running_count(self) -> int:
        return len(self.running)

    # -- heartbeat loop -----------------------------------------------------------

    def start_heartbeats(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._heartbeat_loop(), name=f"nm-heartbeat[{self.host}]")

    def stop_heartbeats(self) -> None:
        self._running = False

    def _heartbeat_loop(self):
        if self.phase > 0:
            yield self.sim.timeout(self.phase)
        while self._running:
            if self.host != self.rm.host:
                self.net.start_flow(
                    self.host, self.rm.host, self.heartbeat_bytes,
                    metadata={
                        "component": TrafficComponent.CONTROL.value,
                        "service": "nm-heartbeat",
                        "src_port": ports.ephemeral_port(f"nm-hb-{self.host.name}"),
                        "dst_port": ports.RM_TRACKER,
                    })
            self.heartbeats_sent += 1
            self.rm.node_heartbeat(self)
            yield self.sim.timeout(self.heartbeat_interval)
