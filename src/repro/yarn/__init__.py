"""YARN substrate: resource management and scheduling.

Implements the YARN control plane at the fidelity that shapes traffic
and task timing:

* **heartbeat-driven allocation** — NodeManagers heartbeat the
  ResourceManager (a small control flow each beat); container grants
  happen *at* heartbeats, reproducing YARN's allocation latency;
* **pluggable schedulers** — FIFO, Fair, Capacity and DRF, selected by
  :attr:`repro.cluster.config.HadoopConfig.scheduler`, which is one of
  the cluster-configuration axes the paper varies;
* **application protocol** — applications (the MapReduce AppMaster in
  :mod:`repro.mapreduce`) register, expose pending container demand,
  and accept grants; container launches cost an AM→NM RPC flow.
"""

from repro.yarn.containers import Container, Resources
from repro.yarn.nodemanager import NodeManager
from repro.yarn.resourcemanager import Application, ResourceManager
from repro.yarn.schedulers import make_scheduler

__all__ = [
    "Application",
    "Container",
    "NodeManager",
    "Resources",
    "ResourceManager",
    "make_scheduler",
]
