"""Capacity scheduler: guaranteed queue capacities, FIFO within queues."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.yarn.containers import Resources
from repro.yarn.schedulers.base import AppUsage, Scheduler


class CapacityScheduler(Scheduler):
    """YARN's CapacityScheduler, reduced to its allocation ordering.

    Queues are configured with capacity fractions (summing to ~1).  At
    each decision the queue with the lowest *relative usage* —
    used memory share divided by configured capacity — is served next,
    and within the queue applications run FIFO.  Queues may exceed their
    capacity when others are idle (elasticity), since relative usage
    only orders queues that currently have demand.

    Applications name their queue; unknown queues fall back to
    ``default`` (capacity 0 queues are still schedulable, ordered last).
    """

    name = "capacity"

    def __init__(self, queue_capacities: Dict[str, float]):
        if not queue_capacities:
            raise ValueError("capacity scheduler needs at least one queue")
        if any(value < 0 for value in queue_capacities.values()):
            raise ValueError(f"negative queue capacity in {queue_capacities}")
        self.queue_capacities = dict(queue_capacities)

    def _capacity_of(self, queue: str) -> float:
        return self.queue_capacities.get(queue, self.queue_capacities.get("default", 0.0))

    def select_app(self, candidates: Sequence[AppUsage],
                   cluster_total: Resources) -> Optional[AppUsage]:
        if not candidates:
            return None
        total_memory = max(cluster_total.memory_mb, 1)
        queue_usage: Dict[str, int] = {}
        for app in candidates:
            queue_usage[app.queue] = queue_usage.get(app.queue, 0) + app.usage.memory_mb

        def queue_ratio(queue: str) -> float:
            capacity = self._capacity_of(queue)
            used_share = queue_usage.get(queue, 0) / total_memory
            if capacity <= 0:
                return float("inf")
            return used_share / capacity

        queue = min({app.queue for app in candidates}, key=lambda q: (queue_ratio(q), q))
        in_queue = [app for app in candidates if app.queue == queue]
        return min(in_queue, key=self.fifo_key)
