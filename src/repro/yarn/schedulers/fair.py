"""Fair scheduler: equalise memory shares across applications."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.yarn.containers import Resources
from repro.yarn.schedulers.base import AppUsage, Scheduler


class FairScheduler(Scheduler):
    """Serve the application furthest below its fair share.

    Models the Hadoop Fair Scheduler with equal weights and memory as
    the fairness resource: the candidate holding the least memory gets
    the next container, submission order breaking ties.  Preemption is
    not modelled (it is off by default in Hadoop and creates no extra
    traffic, only reassignment latency).
    """

    name = "fair"

    def select_app(self, candidates: Sequence[AppUsage],
                   cluster_total: Resources) -> Optional[AppUsage]:
        if not candidates:
            return None
        return min(candidates,
                   key=lambda app: (app.usage.memory_mb,) + self.fifo_key(app))
