"""Scheduler interface and the usage view it decides over."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.yarn.containers import Resources


@dataclass
class AppUsage:
    """What the scheduler may see about one application."""

    app_id: str
    queue: str
    submit_order: int
    pending: int                 # container requests not yet granted
    usage: Resources             # resources currently held
    container_unit: Resources    # per-container ask


class Scheduler:
    """Policy choosing the next application to serve on a free node."""

    name = "base"

    def select_app(self, candidates: Sequence[AppUsage],
                   cluster_total: Resources) -> Optional[AppUsage]:
        """Pick the application that receives the next container.

        ``candidates`` all have ``pending > 0`` and a container that fits
        on the heartbeating node.  Return ``None`` to leave the slot
        idle (no policy currently does, but the interface allows it).
        """
        raise NotImplementedError

    @staticmethod
    def fifo_key(app: AppUsage):
        return (app.submit_order, app.app_id)
