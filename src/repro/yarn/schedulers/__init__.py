"""Pluggable YARN schedulers.

Each scheduler answers one question at NodeManager-heartbeat time:
*which application should the next free container on this node go to?*
The policies mirror the stock YARN schedulers:

* :class:`~repro.yarn.schedulers.fifo.FifoScheduler` — strict
  submission order;
* :class:`~repro.yarn.schedulers.fair.FairScheduler` — smallest current
  memory share first (Fair Scheduler with equal weights);
* :class:`~repro.yarn.schedulers.capacity.CapacityScheduler` — queues
  with guaranteed capacities, most-underserved queue first, FIFO
  within a queue;
* :class:`~repro.yarn.schedulers.drf.DrfScheduler` — Dominant Resource
  Fairness over the (vcores, memory) vector.
"""

from typing import Dict, Optional

from repro.yarn.schedulers.base import Scheduler
from repro.yarn.schedulers.capacity import CapacityScheduler
from repro.yarn.schedulers.drf import DrfScheduler
from repro.yarn.schedulers.fair import FairScheduler
from repro.yarn.schedulers.fifo import FifoScheduler

__all__ = [
    "CapacityScheduler",
    "DrfScheduler",
    "FairScheduler",
    "FifoScheduler",
    "Scheduler",
    "make_scheduler",
]


def make_scheduler(name: str, queue_capacities: Optional[Dict[str, float]] = None) -> Scheduler:
    """Build a scheduler by its :class:`HadoopConfig` name."""
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        return FairScheduler()
    if name == "capacity":
        return CapacityScheduler(queue_capacities or {"default": 1.0})
    if name == "drf":
        return DrfScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
