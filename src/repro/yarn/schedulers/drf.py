"""Dominant Resource Fairness scheduler (Ghodsi et al., NSDI'11)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.yarn.containers import Resources
from repro.yarn.schedulers.base import AppUsage, Scheduler


class DrfScheduler(Scheduler):
    """Serve the application with the smallest dominant share.

    An application's *dominant share* is the maximum, over resource
    dimensions, of its usage divided by the cluster total.  DRF picks
    the candidate minimising it, which generalises max-min fairness to
    the (vcores, memory) vector; with homogeneous container asks it
    coincides with the Fair scheduler, and diverges when jobs request
    CPU-heavy vs memory-heavy containers.
    """

    name = "drf"

    def select_app(self, candidates: Sequence[AppUsage],
                   cluster_total: Resources) -> Optional[AppUsage]:
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda app: (app.usage.dominant_share(cluster_total),) + self.fifo_key(app))
