"""FIFO scheduler: strict submission order."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.yarn.containers import Resources
from repro.yarn.schedulers.base import AppUsage, Scheduler


class FifoScheduler(Scheduler):
    """The earliest-submitted application with demand takes everything.

    This is YARN's ``FifoScheduler``: later jobs starve until earlier
    ones release containers, which is exactly the head-of-line blocking
    the paper's scheduler-comparison experiment exposes.
    """

    name = "fifo"

    def select_app(self, candidates: Sequence[AppUsage],
                   cluster_total: Resources) -> Optional[AppUsage]:
        if not candidates:
            return None
        return min(candidates, key=self.fifo_key)
