"""The ResourceManager: application registry and heartbeat allocation."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.topology import Host
from repro.net.backend import TransportBackend
from repro.simkit.core import Simulator
from repro.yarn.containers import Container, Resources
from repro.yarn.schedulers.base import AppUsage, Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.yarn.nodemanager import NodeManager


class Application:
    """Interface the RM schedules against (implemented by the MR driver)."""

    app_id: str = ""
    queue: str = "default"
    submit_order: int = 0
    container_unit: Resources = Resources()

    def pending_count(self) -> int:
        """Number of containers the application currently wants."""
        raise NotImplementedError

    def on_container_granted(self, container: Container) -> bool:
        """Accept (True) or decline (False) a granted container."""
        raise NotImplementedError

    def on_container_lost(self, container: Container) -> None:
        """Notification that a node failure killed a held container."""
        # Default: applications that don't handle failures ignore it.


class ResourceManager:
    """Allocates containers to applications at NodeManager heartbeats.

    Allocation is *heartbeat-driven* as in YARN: the RM only hands out
    containers on a node when that node heartbeats, so a job's ramp-up
    is paced by ``nm_heartbeat_s`` — visibly staircasing the map-task
    start times (and hence the HDFS-read flow arrival process).
    """

    def __init__(self, sim: Simulator, net: TransportBackend, host: Host,
                 scheduler: Scheduler):
        self.sim = sim
        self.net = net
        self.host = host
        self.scheduler = scheduler
        self.nodes: List["NodeManager"] = []
        self.apps: Dict[str, Application] = {}
        self.usage: Dict[str, Resources] = {}
        self._submit_counter = itertools.count()
        self._container_node: Dict[int, "NodeManager"] = {}
        self.telemetry = sim.telemetry
        registry = self.telemetry.registry
        self._c_heartbeats = registry.counter("yarn.node_heartbeats")
        self._c_granted = registry.counter("yarn.containers_granted")
        self._c_declined = registry.counter("yarn.containers_declined")
        self._c_released = registry.counter("yarn.containers_released")
        self._c_lost = registry.counter("yarn.containers_lost")
        self._c_apps = registry.counter("yarn.apps_submitted")
        self._c_selections = registry.counter(
            "yarn.scheduler_selections", policy=scheduler.name)
        registry.gauge("yarn.registered_nodes", fn=lambda: len(self.nodes))
        registry.gauge("yarn.active_apps", fn=lambda: len(self.apps))

    # -- registration ----------------------------------------------------------

    def register_node(self, node: "NodeManager") -> None:
        self.nodes.append(node)

    @property
    def cluster_total(self) -> Resources:
        total = Resources.zero()
        for node in self.nodes:
            total = total + node.capacity
        return total

    def submit_application(self, app: Application,
                           client_host: Optional[Host] = None) -> None:
        """Register an application (optionally with a submission RPC flow)."""
        if app.app_id in self.apps:
            raise ValueError(f"application {app.app_id!r} already submitted")
        app.submit_order = next(self._submit_counter)
        self.apps[app.app_id] = app
        self.usage[app.app_id] = Resources.zero()
        self._c_apps.value += 1
        if client_host is not None and client_host != self.host:
            self.net.start_flow(
                client_host, self.host, 4096,
                metadata={
                    "component": TrafficComponent.CONTROL.value,
                    "service": "job-submission",
                    "job_id": app.app_id,
                    "src_port": ports.ephemeral_port(f"submit-{app.app_id}"),
                    "dst_port": ports.RM_CLIENT,
                })

    def unregister_application(self, app_id: str) -> None:
        self.apps.pop(app_id, None)
        self.usage.pop(app_id, None)

    # -- allocation --------------------------------------------------------------

    def node_heartbeat(self, node: "NodeManager") -> List[Container]:
        """Allocate free capacity on a heartbeating node.  Returns grants."""
        granted: List[Container] = []
        declined: set = set()
        total = self.cluster_total
        self._c_heartbeats.value += 1
        while True:
            candidates = [
                self._usage_view(app) for app in self.apps.values()
                if app.app_id not in declined
                and app.pending_count() > 0
                and app.container_unit.fits_in(node.free)
            ]
            if not candidates:
                break
            chosen = self.scheduler.select_app(candidates, total)
            if chosen is None:
                break
            self._c_selections.value += 1
            app = self.apps[chosen.app_id]
            container = Container(host=node.host, app_id=app.app_id,
                                  resources=app.container_unit)
            node.allocate(container)
            self._container_node[container.container_id] = node
            self.usage[app.app_id] = self.usage[app.app_id] + container.resources
            if app.on_container_granted(container):
                self._c_granted.value += 1
                granted.append(container)
            else:
                self._c_declined.value += 1
                node.deallocate(container)
                del self._container_node[container.container_id]
                self.usage[app.app_id] = self.usage[app.app_id] - container.resources
                declined.add(app.app_id)
        return granted

    def fail_node(self, node: "NodeManager") -> List[Container]:
        """Handle a NodeManager failure: expire its containers.

        The node is removed from scheduling, its heartbeats stop, and
        each application holding a container on it is notified via
        :meth:`Application.on_container_lost` — mirroring the RM's
        container-expiry path after NM liveness timeout.  Returns the
        lost containers.
        """
        if node in self.nodes:
            self.nodes.remove(node)
        node.stop_heartbeats()
        lost = list(node.running)
        for container in lost:
            node.deallocate(container)
            self._container_node.pop(container.container_id, None)
            if container.app_id in self.usage:
                self.usage[container.app_id] = (
                    self.usage[container.app_id] - container.resources)
            app = self.apps.get(container.app_id)
            if app is not None:
                app.on_container_lost(container)
            self._c_lost.value += 1
        return lost

    def release_container(self, container: Container) -> None:
        """Return a finished container's resources to its node."""
        node = self._container_node.pop(container.container_id, None)
        if node is None:
            raise KeyError(f"unknown container {container!r}")
        node.deallocate(container)
        self._c_released.value += 1
        if container.app_id in self.usage:
            self.usage[container.app_id] = (
                self.usage[container.app_id] - container.resources)

    def _usage_view(self, app: Application) -> AppUsage:
        return AppUsage(
            app_id=app.app_id,
            queue=app.queue,
            submit_order=app.submit_order,
            pending=app.pending_count(),
            usage=self.usage[app.app_id],
            container_unit=app.container_unit,
        )
