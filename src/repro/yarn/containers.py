"""Containers and resource vectors."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import Host

_container_ids = itertools.count(1)


@dataclass(frozen=True)
class Resources:
    """A (vcores, memory) resource vector, YARN-style."""

    vcores: int = 1
    memory_mb: int = 1024

    def __post_init__(self) -> None:
        if self.vcores < 0 or self.memory_mb < 0:
            raise ValueError(f"negative resources: {self}")

    def fits_in(self, other: "Resources") -> bool:
        return self.vcores <= other.vcores and self.memory_mb <= other.memory_mb

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.vcores + other.vcores, self.memory_mb + other.memory_mb)

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(self.vcores - other.vcores, self.memory_mb - other.memory_mb)

    def dominant_share(self, total: "Resources") -> float:
        """The DRF dominant share of this usage against a cluster total."""
        shares = []
        if total.vcores > 0:
            shares.append(self.vcores / total.vcores)
        if total.memory_mb > 0:
            shares.append(self.memory_mb / total.memory_mb)
        return max(shares) if shares else 0.0

    @classmethod
    def zero(cls) -> "Resources":
        return cls(0, 0)

    @classmethod
    def times(cls, unit: "Resources", count: int) -> "Resources":
        return cls(unit.vcores * count, unit.memory_mb * count)


@dataclass
class Container:
    """A granted container on a specific host."""

    host: Host
    app_id: str
    resources: Resources
    container_id: int = 0

    def __post_init__(self) -> None:
        if self.container_id == 0:
            self.container_id = next(_container_ids)

    def __hash__(self) -> int:
        return hash(self.container_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Container(#{self.container_id} on {self.host} for {self.app_id})"
