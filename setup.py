"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .`` via pyproject only) fail with ``invalid command
'bdist_wheel'``.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` take the classic ``setup.py develop`` path.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
